// Batched multi-RHS warm re-solves against one shared factorization.
//
// The coalition sweeps solve thousands of sibling LPs that differ only
// in their capacity rhs and start from the same predecessor basis. The
// sequential path clones the template engine per LP and re-runs the
// whole warm preamble — adopt statuses, LU-factorize the basis, FTRAN
// the rhs — even though for rhs-only patches the adopted statuses and
// the factorization are *identical* across the whole family (status
// sanitization depends only on bound finiteness, and the LU depends
// only on the basic set and the immutable columns).
//
// BatchSolver exploits that: it adopts and factorizes once per group,
// FTRANs the members' rhs vectors as a dense panel against the shared
// LU (identical per-lane operation order, so each lane is bitwise equal
// to the single-rhs FTRAN), and finishes each member with the shared
// btran'd cost vector. A member is "fast" when its basic values are
// primal feasible and pricing finds no entering column — then the warm
// solve performs zero pivots and the Solution is a pure function of
// state the panel already computed. Any member that would pivot spills
// to the ordinary single-solve path, so every result — fast or spilled
// — is bit-identical to today's per-LP warm chain.
//
// Three entry points, one per call-site shape:
//  * solve_group     — a whole level of rhs-patched siblings sharing one
//                      starting basis (model::lp_relaxation_sweep).
//  * solve_one       — one warm re-solve with budget-charge emulation
//                      (serve's bound-table re-solves).
//  * solve_objective — objective-only re-solves chained through the
//                      previous optimum (the nucleolus probe chains);
//                      reuses the factorization *and* the basic values
//                      across consecutive zero-pivot probes.
//
// Determinism contract: every Solution, Basis snapshot, pivot count,
// and budget charge sequence is bitwise/observably identical to the
// equivalent sequence of per-LP RevisedSimplex clones. A BatchSolver is
// driven by one thread at a time; parallel sweeps construct one per
// worker chunk and feed it consecutive groups — reuse across groups is
// bitwise inert because solve_group restores the prototype rhs and
// re-adopts the start basis on entry, and the frame cache only skips
// recomputing state (LU, y, d) that is a pure function of the basic
// set it is keyed on.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "lp/revised_simplex.hpp"

namespace fedshare::lp {

/// Counters for observing how much of a workload hit the zero-pivot
/// panel path (`fast`) versus spilling to single solves (`spilled`),
/// and how often consecutive calls reused a cached factorization.
struct BatchStats {
  std::uint64_t groups = 0;        ///< solve_group invocations
  std::uint64_t fast = 0;          ///< zero-pivot panel/frame solves
  std::uint64_t spilled = 0;       ///< fell back to the single-solve path
  std::uint64_t frame_builds = 0;  ///< factorizations performed
  std::uint64_t frame_reuses = 0;  ///< factorizations skipped (cache hit)
};

class BatchSolver {
 public:
  /// Snapshots `prototype` (computational form + current rhs) as the
  /// pristine template every member solve is patched from.
  explicit BatchSolver(const RevisedSimplex& prototype);

  /// Solves every member of `patches` warm from `basis`, writing one
  /// Solution per member to `sols` (and, when `bases_out` is non-null,
  /// the member's post-solve basis snapshot — empty exactly when the
  /// sequential path would have produced an engine without one).
  /// Patches are applied to the pristine template rhs, so members are
  /// independent; bound patches and budget/observer-carrying prototypes
  /// are handled by spilling (still bit-identical, just not batched).
  ///
  /// With `objective_only`, fast members carry only status, objective
  /// and pivots (x/duals left empty; the objective is folded through
  /// the identical operation sequence, so it is still bitwise the
  /// sequential value). Spilled members always carry full payloads.
  /// Sweeps that consume only objectives and basis snapshots use this
  /// to skip a per-member Solution materialization.
  void solve_group(const Basis& basis,
                   const std::vector<ProblemPatch>& patches,
                   std::vector<Solution>& sols,
                   std::vector<Basis>* bases_out = nullptr,
                   bool objective_only = false);

  /// One warm re-solve of `patch` from `basis` (nullptr/empty = cold),
  /// charging `budget` exactly as the sequential clone would (dual
  /// sweep + primal sweep loop-top charges, in order). `basis_out`
  /// receives the post-solve snapshot (empty when the sequential fresh
  /// clone would have had none, e.g. presolve infeasibility).
  [[nodiscard]] Solution solve_one(const Basis* basis,
                                   const ProblemPatch& patch,
                                   const runtime::ComputeBudget* budget,
                                   Basis* basis_out = nullptr);

  /// Objective-only warm re-solve from `basis` (the nucleolus probe
  /// shape: rhs and bounds never change across the chain). Consecutive
  /// zero-pivot probes whose starting statuses match the cached frame
  /// skip prepare/adopt/factorize/FTRAN entirely — one BTRAN for the
  /// new objective plus two scans. Do not interleave with solve_one /
  /// solve_group on the same instance: those patch the rhs, which this
  /// entry point assumes fixed.
  [[nodiscard]] Solution solve_objective(const std::vector<double>& objective,
                                         const Basis& basis,
                                         Basis* basis_out = nullptr);

  [[nodiscard]] const BatchStats& stats() const noexcept { return stats_; }

  /// Basis snapshot of the most recent solve on the frame engine.
  [[nodiscard]] Basis current_basis() const { return engine_.basis(); }

 private:
  void restore_rhs(RevisedSimplex& e) const;
  static void apply_rhs(RevisedSimplex& e, const ProblemPatch& patch);
  void invalidate_frame() noexcept;
  // Adopts `basis` on the frame engine and ensures the LU matches the
  // adopted basic set, factorizing only when the cached one differs.
  // Returns false when factorization failed (caller falls back cold).
  bool ensure_frame(const Basis& basis);
  // After a pivoting solve on the frame engine, replays the warm-start
  // preamble (prepare / adopt / factorize / FTRAN) once so the next
  // zero-pivot probe can reuse the cached state. Pure replay: it only
  // reconstructs state the next solve's own preamble would rebuild.
  void rebuild_frame_from_current();
  void refresh_y();
  [[nodiscard]] bool primal_feasible() const;
  [[nodiscard]] bool pricing_none() const;
  [[nodiscard]] bool dual_feasible_from_d() const;
  // Block-FTRANs `lanes` rhs vectors (slot-major: slot i's lane values
  // contiguous at panel[i * lanes]) through the frame LU; each lane's
  // operation order is identical to RevisedSimplex::ftran, so lanes are
  // bitwise equal to single solves, while the innermost lane loop
  // vectorizes.
  void panel_ftran(std::vector<double>& panel, std::size_t lanes);
  [[nodiscard]] Solution spill_solve(const Basis& basis,
                                     const ProblemPatch& patch,
                                     Basis* basis_out);

  RevisedSimplex engine_;    ///< frame engine (shared factorization)
  RevisedSimplex spill_;     ///< persistent scratch for spilled members
  RevisedSimplex pristine_;  ///< untouched template (bound-patch clones)
  std::vector<double> base_rhs_;  ///< prototype constraint rhs snapshot

  // Frame cache. frame_ok_: engine_'s LU matches frame_basic_ (== its
  // basic_) with an empty eta file. x_ok_: x_basic_ is a fresh
  // compute_basic_values for the current instance data. y_ok_: y_/d_
  // match the current basic set and objective.
  bool frame_ok_ = false;
  bool x_ok_ = false;
  bool y_ok_ = false;
  std::vector<std::size_t> frame_basic_;
  std::vector<double> y_;  ///< btran'd basic costs of the frame
  std::vector<double> d_;  ///< reduced cost per column against y_

  std::vector<double> panel_;       ///< rhs panel (slot-major lanes)
  std::vector<double> panel_work_;  ///< permutation scratch
  // Group-invariant assembly list: the (column, nonbasic value) pairs
  // with nonzero contribution, in ascending column order — the exact
  // subtraction sequence compute_basic_values performs per rhs.
  std::vector<std::pair<std::size_t, double>> nonbasic_nz_;
  // prepare()'s row_rhs_ for the *pristine* rhs: lanes re-derive their
  // row_rhs_ as base_row_rhs_ plus their patch rows, skipping the full
  // prepare() re-run (legal because panel patches never touch a
  // bound-mapped constraint, so every other prepare() output stands).
  std::vector<double> base_row_rhs_;
  // Fast-member template: extract_core of the group's first fast
  // member; later members differ only in basic x values + objective.
  Solution tmpl_sol_;
  // objective_only scratch: the template's x with each member's basic
  // values written over it before the objective fold — nonbasic slots
  // are group-invariant, and every fold rewrites all basic slots, so
  // no restore step is needed between members.
  std::vector<double> x_work_;

  BatchStats stats_;
};

}  // namespace fedshare::lp
