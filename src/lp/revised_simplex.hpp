// Bounded-variable revised simplex with an LU-factorized basis.
//
// The dense tableau in lp/simplex.hpp recomputes an m x cols tableau on
// every pivot and rebuilds everything from scratch on every solve. This
// engine keeps the constraint matrix immutable (column-major, sparse),
// represents the basis as an LU factorization updated by an eta file
// (product-form update), and refactorizes on a fixed cadence — so a
// pivot costs two triangular solves instead of a tableau sweep, and an
// optimal basis can be snapshotted and reused:
//
//  * solve()             — cold start from the all-slack basis; composite
//                          phase-1 (minimize the sum of bound violations)
//                          then phase-2 on the real objective.
//  * solve_from_basis(b) — warm start. When only the rhs or variable
//                          bounds changed since `b` was optimal, the
//                          basis stays dual feasible and a dual-simplex
//                          sweep re-solves in a handful of pivots; when
//                          the objective or the row set changed, the
//                          statuses seed a primal re-solve (with a crash
//                          that rebuilds a compatible basis if the row
//                          dimension moved).
//
// Two structural features the dense solver lacks:
//  * native bounds — free variables are not split into x+ - x-, and
//    singleton rows (a*x <= b and friends) are presolved into variable
//    bounds, which shrinks the basis by the number of such rows (the
//    allocation relaxation drops from (L + C*L) rows to L).
//  * patching — set_constraint_rhs / set_bounds / apply(ProblemPatch)
//    edit the instance in place, so a family of LPs differing only in
//    capacities (one per coalition) shares one build.
//
// Determinism: entering/leaving choices use fixed tie-breaks (smallest
// index), so a solve is a pure function of (instance, patches, starting
// basis) — independent of thread count or arrival order when instances
// are cloned per worker. Anti-cycling: Dantzig pricing normally, with a
// Bland fallback that engages after a stall streak and disengages on
// real progress.
//
// Budget contract: one ComputeBudget unit per simplex iteration (primal
// pivot, dual pivot, bound flip, or crash pivot), matching the dense
// solver's one-unit-per-pivot rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "lp/matrix.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace fedshare::lp {

/// Status of one solver column (structural variable or slack).
enum class VarStatus : unsigned char {
  kAtLower,       ///< nonbasic at its (finite) lower bound
  kAtUpper,       ///< nonbasic at its (finite) upper bound
  kBasic,         ///< in the basis
  kFreeNonbasic,  ///< nonbasic free variable, pinned at 0
};

/// Snapshot of a basis: one status per solver column (structural
/// variables first, then one slack per non-presolved row). Produced by
/// RevisedSimplex::basis() after a solve; consumed by solve_from_basis.
/// A snapshot taken on one instance is reusable on any instance with
/// the same constraint structure (only rhs/bounds/objective may differ);
/// an instance with a different row set triggers the crash path, which
/// reuses the structural statuses only.
struct Basis {
  std::vector<VarStatus> status;
  std::size_t num_structural = 0;

  [[nodiscard]] bool empty() const noexcept { return status.empty(); }
};

/// In-place edits for a built instance: constraint rhs replacements and
/// structural-variable bound replacements. Applying a patch never
/// changes the constraint structure, so basis snapshots stay valid warm
/// starts across patches.
struct ProblemPatch {
  struct Rhs {
    std::size_t constraint = 0;
    double rhs = 0.0;
  };
  struct Bounds {
    std::size_t variable = 0;
    double lower = 0.0;
    double upper = 0.0;
  };
  std::vector<Rhs> rhs;
  std::vector<Bounds> bounds;
};

/// The revised simplex engine. Instances are plain values: copying one
/// clones the whole state (matrix, factorization, statuses), which is
/// how parallel sweeps hand each worker its own solver built from a
/// shared template.
class RevisedSimplex {
 public:
  /// BatchSolver drives the private solve machinery (prepare / adopt /
  /// factorize / panel FTRAN / extract_core) to re-solve whole families
  /// of rhs-patched siblings against one shared factorization.
  friend class BatchSolver;
  /// Builds the computational form of `problem`: singleton rows become
  /// variable bounds, remaining rows get one slack each. The instance
  /// remembers `options` (tolerance, budget, max_iterations) for every
  /// subsequent solve.
  explicit RevisedSimplex(const Problem& problem, SimplexOptions options = {});

  /// Replaces the rhs of constraint `constraint` (index into the
  /// original Problem's constraint list, bound rows included).
  void set_constraint_rhs(std::size_t constraint, double rhs);

  /// Replaces an existing *row-mapped* constraint wholesale
  /// (coefficients, relation, rhs) without disturbing the rest of the
  /// computational form. The row-set patching path for probe chains:
  /// the nucleolus fixes a tight excess row `a^T x + eps >= b` into
  /// `a'^T x == b'` between rounds and keeps re-solving warm from the
  /// previous basis — prepare()/factorize() run per solve, so the next
  /// solve_from_basis picks the edit up with no further invalidation.
  /// The constraint must have been a real row at construction (not a
  /// presolved singleton bound) and the new coefficients must not be
  /// all zero; throws std::invalid_argument otherwise.
  void set_constraint(std::size_t constraint,
                      const std::vector<double>& coefficients,
                      Relation relation, double rhs);

  /// Replaces the declared bounds of structural variable `variable`.
  /// Use -inf/+inf for unbounded sides; singleton-row bounds still
  /// intersect with these.
  void set_bounds(std::size_t variable, double lower, double upper);

  /// Replaces one objective coefficient (in the original problem's
  /// sense).
  void set_objective_coefficient(std::size_t variable, double coefficient);

  /// Applies every edit in `patch`.
  void apply(const ProblemPatch& patch);

  /// Re-targets the cooperative budget charged by subsequent solves
  /// (nullptr disables). Parallel sweeps clone a template instance per
  /// chunk and point each clone at its forked child budget, since a
  /// ComputeBudget must not be charged from two threads.
  void set_budget(const runtime::ComputeBudget* budget) noexcept {
    options_.budget = budget;
  }

  /// Cold solve from the all-slack basis.
  [[nodiscard]] Solution solve();

  /// Warm solve from `basis` (falls back to a cold solve when `basis`
  /// is empty or unusable). Prefers a dual-simplex sweep when the basis
  /// is still dual feasible — the cheap path after rhs/bound patches.
  [[nodiscard]] Solution solve_from_basis(const Basis& basis) {
    return solve_from_basis_impl(basis, nullptr, nullptr, nullptr);
  }

  /// Basis snapshot of the most recent solve (empty before any solve).
  [[nodiscard]] Basis basis() const;

  /// Cumulative simplex iterations across all solves on this instance.
  [[nodiscard]] std::uint64_t pivots() const noexcept { return pivots_; }

  /// Rows remaining after singleton presolve (the basis dimension).
  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }
  /// Structural variables + slacks.
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return num_cols_;
  }
  [[nodiscard]] std::size_t num_structural() const noexcept { return n_; }

 private:
  static constexpr std::size_t kNoSource = static_cast<std::size_t>(-1);

  struct Eta {
    std::size_t row = 0;
    std::vector<double> coef;
  };
  struct ColEntry {
    std::size_t row = 0;
    double value = 0.0;
  };
  // How an original constraint maps into the computational form.
  struct ConstraintMap {
    bool is_bound = false;
    std::size_t index = 0;  ///< real-row index, or variable for bounds
    double coeff = 0.0;     ///< singleton coefficient (bounds only)
    Relation relation = Relation::kLessEqual;
  };

  // Setup shared by both solve entry points: effective bounds, row rhs,
  // trivial-infeasibility detection. Returns false when a variable's
  // effective bound interval is empty (LP infeasible).
  bool prepare();
  [[nodiscard]] Solution solve_bounds_only() const;
  void reset_to_slack_basis();
  void adopt_statuses(const Basis& basis);
  bool crash_from(const Basis& basis, Solution& out);

  // solve_from_basis with an optional factorization seed. When the
  // adopted basic set equals `seed_basic`, installs `seed_lu`/`seed_perm`
  // instead of refactorizing — legal because factorize() is a pure
  // function of (basic set, immutable columns), so a seed taken from an
  // engine that factorized the same basic set over the same problem is
  // bitwise the LU this engine would compute. BatchSolver uses this to
  // share the group frame's factorization with spilled members.
  [[nodiscard]] Solution solve_from_basis_impl(
      const Basis& basis, const std::vector<std::size_t>* seed_basic,
      const Matrix* seed_lu, const std::vector<std::size_t>* seed_perm);

  // Basis linear algebra.
  bool factorize();
  void ftran(std::vector<double>& v) const;
  void btran(std::vector<double>& v) const;
  [[nodiscard]] std::vector<double> column(std::size_t j) const;
  void column_into(std::size_t j, std::vector<double>& col) const;
  [[nodiscard]] double column_dot(std::size_t j,
                                  const std::vector<double>& y) const;
  void compute_basic_values();
  // Records the product-form update for the pivot at `row_pos` (w is the
  // ftran'd entering column) and refactorizes on cadence. Sets
  // `basis_reset_` when a singular refactorization forced a restart from
  // the slack basis.
  void push_eta(std::size_t row_pos, const std::vector<double>& w);

  [[nodiscard]] double nonbasic_value(std::size_t j) const;
  [[nodiscard]] bool is_fixed(std::size_t j) const;
  [[nodiscard]] bool dual_feasible() const;
  [[nodiscard]] double internal_cost(std::size_t j) const noexcept;

  // Engines. Each returns true when the caller should continue (found
  // an optimum / handed over), false when `out.status` is final.
  bool run_dual(Solution& out);
  bool run_primal(Solution& out);
  void extract(Solution& out) const;
  // The body of extract() given the btran'd basic-cost vector `y` —
  // BatchSolver computes y once per shared factorization and calls this
  // per sibling, which is bitwise identical to extract() because y is a
  // pure function of (lu_, etas_, basic_, objective_). `d_cache`, when
  // non-null, supplies the per-column reduced costs against the same y
  // (computed with the identical `internal_cost(v) - column_dot(v, y)`
  // expression), saving the per-call recomputation without changing a
  // single FP operation.
  void extract_core(const std::vector<double>& y, Solution& out,
                    const std::vector<double>* d_cache = nullptr) const;

  // Certificate construction (see lp::Solution). bound_farkas witnesses
  // a presolve-detected infeasibility (empty bound interval / violated
  // empty row); farkas_from_rows discharges a row-space infeasibility
  // multiplier onto original constraints (returns false when a declared
  // bound blocks the witness — the certificate is then left empty).
  void bound_farkas(Solution& out) const;
  bool farkas_from_rows(const std::vector<double>& y_row,
                        Solution& out) const;
  // Reports `out` to options_.observer when one is attached and the
  // mirrored Problem is still valid (set_bounds invalidates it).
  void notify(Solution& out);

  // Immutable-ish problem data (patched in place).
  std::size_t n_ = 0;         ///< structural variables
  std::size_t num_rows_ = 0;  ///< rows after presolve (basis dimension)
  std::size_t num_cols_ = 0;  ///< n_ + num_rows_
  Objective sense_ = Objective::kMaximize;
  double csign_ = 1.0;  ///< internal minimize: c_int = csign_ * c_orig
  SimplexOptions options_;
  std::vector<double> objective_;             ///< original sense
  std::vector<ConstraintMap> constraint_map_;  ///< per original constraint
  std::vector<double> constraint_rhs_;         ///< per original constraint
  std::vector<Relation> row_relation_;         ///< per real row
  std::vector<std::size_t> row_constraint_;    ///< real row -> constraint
  std::vector<std::vector<ColEntry>> cols_;    ///< structural columns
  std::vector<double> decl_lower_, decl_upper_;  ///< declared var bounds
  /// Mirror of the constructing Problem, kept patched in step with
  /// set_constraint_rhs / set_objective_coefficient so observer
  /// callbacks can hand the verifier the LP actually solved. Only
  /// maintained when an observer is attached; set_bounds discards it
  /// (declared bounds have no Problem representation).
  std::optional<Problem> mirror_;

  // Derived per solve (by prepare()).
  std::vector<double> lower_, upper_;  ///< effective bounds per column
  std::vector<double> row_rhs_;        ///< per real row
  /// Which original (singleton) constraint produced each structural
  /// variable's binding effective lower/upper bound — kNoSource when the
  /// bound is declared/natural. Certificates discharge reduced costs at
  /// a bound onto its source constraint.
  std::vector<std::size_t> src_lo_, src_hi_;
  bool bound_infeasible_ = false;

  // Basis state.
  std::vector<VarStatus> status_;      ///< per column
  std::vector<std::size_t> basic_;     ///< basis position -> column
  std::vector<double> x_basic_;        ///< value per basis position
  Matrix lu_;                          ///< dense LU of the basis
  std::vector<std::size_t> perm_;      ///< row permutation of the LU
  std::vector<Eta> etas_;              ///< product-form updates since LU
  bool has_basis_ = false;
  bool basis_reset_ = false;  ///< set by push_eta on singular refactorize

  std::uint64_t pivots_ = 0;

  // Reusable scratch: ftran/btran triangular-solve temporaries, pricing
  // and ratio-test work vectors, and retired Eta records recycled by
  // push_eta. Cold solves used to reallocate all of these per pivot —
  // BENCH_simplex showed revised_cold_ms at ~2x dense_ms from allocator
  // traffic alone. Instances are driven by one thread at a time (clones
  // per worker), so mutable scratch inside const solves is safe.
  void recycle_etas();
  mutable std::vector<double> ftran_work_, btran_work_;
  std::vector<double> price_work_, rho_work_, col_work_;
  std::vector<Eta> eta_pool_;
};

/// One-shot revised solve mirroring lp::solve's contract.
[[nodiscard]] Solution solve_revised(const Problem& problem,
                                     const SimplexOptions& options = {});

}  // namespace fedshare::lp
