// Linear-program builder.
//
// A Problem holds `maximize/minimize c^T x` subject to linear constraints
// `a^T x {<=,==,>=} b`. Variables are non-negative by default; individual
// variables can be declared free (they are split internally by the solver).
#pragma once

#include <cstddef>
#include <vector>

namespace fedshare::lp {

/// Constraint relation.
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

/// Optimization direction.
enum class Objective { kMaximize, kMinimize };

/// One linear constraint: coefficients (dense, one per variable), relation,
/// right-hand side.
struct Constraint {
  std::vector<double> coefficients;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program over a fixed number of variables.
class Problem {
 public:
  /// Creates a problem with `num_variables` variables (>= 1), all with
  /// objective coefficient 0 and non-negativity bounds.
  explicit Problem(std::size_t num_variables,
                   Objective sense = Objective::kMaximize);

  /// Sets the objective coefficient of one variable.
  void set_objective_coefficient(std::size_t variable, double coefficient);

  /// Declares a variable free (may take negative values).
  void set_free(std::size_t variable);

  /// Adds a constraint; `coefficients` must have one entry per variable.
  void add_constraint(std::vector<double> coefficients, Relation relation,
                      double rhs);

  /// Replaces the right-hand side of an existing constraint. The cheap
  /// path for families of LPs that differ only in rhs (per-coalition
  /// capacity patches): build once, patch in place, re-solve.
  void set_constraint_rhs(std::size_t constraint, double rhs);

  /// Replaces an existing constraint wholesale (coefficients, relation,
  /// rhs). The row-set patching path for probe chains whose constraint
  /// *set* evolves in place — e.g. the nucleolus converting an active
  /// excess row `a^T x + eps >= b` into a fixed row `a^T x == b'`
  /// between rounds — without rebuilding the whole problem.
  void set_constraint(std::size_t constraint,
                      std::vector<double> coefficients, Relation relation,
                      double rhs);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return objective_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] Objective sense() const noexcept { return sense_; }
  [[nodiscard]] const std::vector<double>& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] bool is_free(std::size_t variable) const;

 private:
  Objective sense_;
  std::vector<double> objective_;
  std::vector<bool> free_;
  std::vector<Constraint> constraints_;
};

}  // namespace fedshare::lp
