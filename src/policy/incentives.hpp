// Incentives for resource provision (the paper's Sec. 4.4 / Fig. 9).
//
// Sweeps one facility's contribution (its number of locations) and
// reports its payoff under a sharing policy, holding everything else
// fixed. The Shapley curve exhibits jumps at the coalition-threshold
// points; the proportional curve is smooth — the trade-off the paper
// highlights.
#pragma once

#include <vector>

#include "model/demand.hpp"
#include "model/facility.hpp"
#include "policy/policy.hpp"

namespace fedshare::policy {

/// One point of a provision-incentive curve.
struct IncentivePoint {
  int locations = 0;   ///< the swept facility's L
  double payoff = 0.0; ///< its payoff s_i * V(N)
  double share = 0.0;  ///< its share s_i
};

/// Sweeps facility `facility_index`'s location count over `location_grid`
/// (ascending), rebuilding the federation each time with disjoint
/// locations and `demand`, and evaluates `policy`.
[[nodiscard]] std::vector<IncentivePoint> provision_curve(
    std::vector<model::FacilityConfig> configs, int facility_index,
    const std::vector<int>& location_grid, const model::DemandProfile& demand,
    const SharingPolicy& policy);

/// Marginal payoff per added location between consecutive grid points
/// (forward differences; size = points - 1). Used by the stability
/// analysis: large spikes indicate threshold-driven provision jumps.
[[nodiscard]] std::vector<double> marginal_payoffs(
    const std::vector<IncentivePoint>& curve);

}  // namespace fedshare::policy
