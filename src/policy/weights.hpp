// Offline policy weights (the paper's Sec. 4.4 proposal).
//
// "ϕ̂_i can be computed off-line and used as heuristic evaluators of the
// individual contributions of facilities, given the mixture of expected
// users": average the normalised Shapley values over a set of demand
// scenarios, weighted by their expected probabilities, and use the result
// as generic sharing / allocation weights.
#pragma once

#include <vector>

#include "model/demand.hpp"
#include "model/location_space.hpp"

namespace fedshare::policy {

/// A demand scenario with its expected probability.
struct DemandScenario {
  model::DemandProfile demand;
  double probability = 1.0;
};

/// Probability-weighted average of the normalised Shapley values across
/// scenarios (probabilities are renormalised; must be non-negative and
/// not all zero). The result sums to 1.
[[nodiscard]] std::vector<double> offline_shapley_weights(
    const model::LocationSpace& space,
    const std::vector<DemandScenario>& scenarios);

/// Maximum absolute per-facility deviation between two weight vectors —
/// used to quantify how far a static policy drifts from the live one.
[[nodiscard]] double weight_drift(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace fedshare::policy
