#include "policy/equilibrium.hpp"

#include <stdexcept>

#include "exec/pool.hpp"
#include "model/federation.hpp"

namespace fedshare::policy {

namespace {

void validate_game(const ProvisionGame& game) {
  if (game.base_configs.size() != game.strategy_grids.size()) {
    throw std::invalid_argument(
        "ProvisionGame: one strategy grid per facility required");
  }
  for (const auto& grid : game.strategy_grids) {
    if (grid.empty()) {
      throw std::invalid_argument("ProvisionGame: empty strategy grid");
    }
    for (const int l : grid) {
      if (l < 0) {
        throw std::invalid_argument(
            "ProvisionGame: negative location strategy");
      }
    }
  }
  game.demand.validate();
  game.cost.validate();
}

void validate_profile(const ProvisionGame& game, const Profile& profile) {
  if (profile.size() != game.strategy_grids.size()) {
    throw std::invalid_argument("Profile: wrong size");
  }
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i] >= game.strategy_grids[i].size()) {
      throw std::invalid_argument("Profile: strategy index out of range");
    }
  }
}

}  // namespace

std::vector<double> profile_payoffs(const ProvisionGame& game,
                                    const SharingPolicy& policy,
                                    const Profile& profile) {
  validate_game(game);
  validate_profile(game, profile);
  std::vector<model::FacilityConfig> configs = game.base_configs;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].num_locations = game.strategy_grids[i][profile[i]];
  }
  model::Federation fed(model::LocationSpace::disjoint(configs), game.demand);
  const std::vector<double> shares = policy.shares(fed);
  const double total =
      fed.value(game::Coalition::grand(fed.num_facilities()));
  std::vector<double> payoffs(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    payoffs[i] =
        shares[i] * total - game.cost.alpha * configs[i].num_locations;
  }
  return payoffs;
}

BestResponseResult best_response_dynamics(const ProvisionGame& game,
                                          const SharingPolicy& policy,
                                          const Profile& start,
                                          int max_rounds) {
  validate_game(game);
  validate_profile(game, start);
  BestResponseResult result;
  result.profile = start;
  for (int round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    bool any_change = false;
    for (std::size_t i = 0; i < result.profile.size(); ++i) {
      Profile trial = result.profile;
      std::size_t best_idx = result.profile[i];
      trial[i] = best_idx;
      double best_payoff = profile_payoffs(game, policy, trial)[i];
      for (std::size_t s = 0; s < game.strategy_grids[i].size(); ++s) {
        if (s == result.profile[i]) continue;
        trial[i] = s;
        const double payoff = profile_payoffs(game, policy, trial)[i];
        if (payoff > best_payoff + 1e-9) {
          best_payoff = payoff;
          best_idx = s;
        }
      }
      if (best_idx != result.profile[i]) {
        result.profile[i] = best_idx;
        any_change = true;
      }
    }
    if (!any_change) {
      result.converged = true;
      break;
    }
  }
  result.payoffs = profile_payoffs(game, policy, result.profile);
  return result;
}

std::vector<Profile> pure_nash_equilibria(const ProvisionGame& game,
                                          const SharingPolicy& policy) {
  validate_game(game);
  std::size_t total = 1;
  for (const auto& grid : game.strategy_grids) {
    total *= grid.size();
    if (total > 4096) {
      throw std::invalid_argument(
          "pure_nash_equilibria: strategy space exceeds 4096 profiles");
    }
  }
  const std::size_t n = game.strategy_grids.size();
  // Each profile's Nash check is independent: test them in parallel
  // into per-profile slots, then collect in index order so the result
  // list is identical at any thread count.
  std::vector<char> is_nash(total, 0);
  exec::parallel_for(0, total, 1, [&](const exec::ChunkRange& r) {
    const std::size_t idx = r.begin;  // chunk size 1: one profile
    // Decode idx into a profile (mixed radix).
    Profile profile(n, 0);
    std::size_t rem = idx;
    for (std::size_t i = 0; i < n; ++i) {
      profile[i] = rem % game.strategy_grids[i].size();
      rem /= game.strategy_grids[i].size();
    }
    const std::vector<double> payoffs =
        profile_payoffs(game, policy, profile);
    bool nash = true;
    for (std::size_t i = 0; i < n && nash; ++i) {
      Profile trial = profile;
      for (std::size_t s = 0; s < game.strategy_grids[i].size(); ++s) {
        if (s == profile[i]) continue;
        trial[i] = s;
        if (profile_payoffs(game, policy, trial)[i] > payoffs[i] + 1e-9) {
          nash = false;
          break;
        }
      }
    }
    is_nash[idx] = nash ? 1 : 0;
    return true;
  });
  std::vector<Profile> equilibria;
  Profile profile(n, 0);
  for (std::size_t idx = 0; idx < total; ++idx) {
    if (!is_nash[idx]) continue;
    std::size_t rem = idx;
    for (std::size_t i = 0; i < n; ++i) {
      profile[i] = rem % game.strategy_grids[i].size();
      rem /= game.strategy_grids[i].size();
    }
    equilibria.push_back(profile);
  }
  return equilibria;
}

}  // namespace fedshare::policy
