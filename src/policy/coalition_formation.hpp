// Dynamic coalition formation: merge-and-split over federation partitions
// (the Sec. 3.3 "evolution of the federation game" question, following
// the coalition-formation framework of Saad et al. [12], which the paper
// cites).
//
// Facilities start partitioned (by default as singletons). Each separate
// coalition S earns V(S) and splits it internally by the Shapley value of
// the subgame on S. The dynamics then repeatedly apply:
//   * merge — two coalitions fuse when every member is at least as well
//     off and someone strictly gains;
//   * split — a coalition breaks in two under the same Pareto rule.
// A partition with no admissible merge or split is merge-split stable
// (D_hp-stability in the Saad et al. terminology).
//
// This API is now a thin shim over structure/hedonic.hpp (same
// dynamics, shared value cache, no block-count ceiling); it keeps its
// historical n <= 10 envelope for compatibility. New code — and any
// game larger than 10 players — should use
// structure::hedonic_merge_split directly.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/owen.hpp"

namespace fedshare::policy {

/// Payoffs of all players under a partition: each block S earns V(S),
/// divided by the Shapley value of the subgame restricted to S.
[[nodiscard]] std::vector<double> partition_payoffs(
    const game::Game& game, const game::CoalitionStructure& partition);

/// Outcome of merge-split dynamics.
struct FormationResult {
  game::CoalitionStructure partition;  ///< final partition
  std::vector<double> payoffs;         ///< payoffs under it
  int iterations = 0;                  ///< merge/split operations applied
  bool converged = false;              ///< no admissible operation remains
};

/// Runs merge-and-split from `start` (defaults to singletons when
/// omitted) until stability or `max_operations` operations. Merges are
/// tried before splits each round; candidate order is deterministic
/// (lexicographic), so results are reproducible. Requires n <= 10.
[[nodiscard]] FormationResult merge_split(
    const game::Game& game, int max_operations = 200);
[[nodiscard]] FormationResult merge_split(
    const game::Game& game, game::CoalitionStructure start,
    int max_operations = 200);

/// Whether `partition` admits no Pareto-improving merge or split.
[[nodiscard]] bool is_merge_split_stable(
    const game::Game& game, const game::CoalitionStructure& partition);

}  // namespace fedshare::policy
