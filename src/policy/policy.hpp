// Federation sharing policies (the pipeline in the paper's Fig. 3).
//
// A SharingPolicy turns a Federation (providers + demand) into a share
// vector s with sum(s) = 1; payoffs are s_i * V(N). Concrete policies
// wrap the game-theoretic schemes in core/sharing.hpp, wiring in the
// model-derived weight vectors where the scheme needs them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sharing.hpp"
#include "model/federation.hpp"

namespace fedshare::policy {

/// Abstract profit/value-sharing policy.
class SharingPolicy {
 public:
  virtual ~SharingPolicy() = default;

  /// Share vector for the federation (one entry per facility, sums to 1).
  [[nodiscard]] virtual std::vector<double> shares(
      const model::Federation& federation) const = 0;

  /// Policy name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Payoffs: shares * V(N).
  [[nodiscard]] std::vector<double> payoffs(
      const model::Federation& federation) const;
};

/// Normalised Shapley value policy (the paper's recommendation).
class ShapleyPolicy final : public SharingPolicy {
 public:
  [[nodiscard]] std::vector<double> shares(
      const model::Federation& federation) const override;
  [[nodiscard]] std::string name() const override { return "shapley"; }
};

/// Availability-proportional policy (Eq. 6: weights L_i * R_i * T_i).
class ProportionalAvailabilityPolicy final : public SharingPolicy {
 public:
  [[nodiscard]] std::vector<double> shares(
      const model::Federation& federation) const override;
  [[nodiscard]] std::string name() const override {
    return "prop-availability";
  }
};

/// Consumption-proportional policy (Eq. 7: weights = consumed units under
/// the grand coalition's allocation).
class ProportionalConsumptionPolicy final : public SharingPolicy {
 public:
  [[nodiscard]] std::vector<double> shares(
      const model::Federation& federation) const override;
  [[nodiscard]] std::string name() const override {
    return "prop-consumption";
  }
};

/// Equal-split policy.
class EqualPolicy final : public SharingPolicy {
 public:
  [[nodiscard]] std::vector<double> shares(
      const model::Federation& federation) const override;
  [[nodiscard]] std::string name() const override { return "equal"; }
};

/// Nucleolus policy (requires <= 10 facilities).
class NucleolusPolicy final : public SharingPolicy {
 public:
  [[nodiscard]] std::vector<double> shares(
      const model::Federation& federation) const override;
  [[nodiscard]] std::string name() const override { return "nucleolus"; }
};

/// Factory from the scheme enum.
[[nodiscard]] std::unique_ptr<SharingPolicy> make_policy(game::Scheme scheme);

}  // namespace fedshare::policy
