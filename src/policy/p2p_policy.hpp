// P2P-scenario value sharing on a federation (Eq. 3 end-to-end).
//
// In the P2P scenario there is no money: each facility's payoff is the
// utility its own affiliated users obtain from the pooled infrastructure,
// so the allocation decision *is* the sharing decision. This bridges
// model::LocationSpace to alloc::allocate_p2p and reports the price of
// incentive compatibility: how much total utility the individual-
// rationality constraints cost relative to the unconstrained commercial
// optimum (the paper's Sec. 3.1 observation).
#pragma once

#include <vector>

#include "alloc/p2p.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"

namespace fedshare::policy {

/// Outcome of P2P value sharing across a federation.
struct P2PFederationResult {
  bool feasible = false;
  std::vector<double> slots;      ///< location-slots granted per facility
  std::vector<double> utilities;  ///< u^f_i — each facility's payoff
  std::vector<double> shares;     ///< utilities normalised to sum 1
  double total_utility = 0.0;
  double commercial_optimum = 0.0;  ///< unconstrained total utility
  /// commercial_optimum - total_utility (>= 0): what incentive
  /// compatibility costs the federation.
  double incentive_cost = 0.0;
};

/// Runs the P2P allocation for `facility_demands[i]` = facility i's
/// aggregate user demand. All demands must use the same
/// units_per_location (slots must be commensurable); throws
/// std::invalid_argument otherwise or on size mismatch.
[[nodiscard]] P2PFederationResult p2p_value_sharing(
    const model::LocationSpace& space,
    const std::vector<model::RequestClass>& facility_demands);

}  // namespace fedshare::policy
