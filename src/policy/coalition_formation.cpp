// Legacy merge-split API, now a thin forwarding shim over the
// structure subsystem's hedonic engine (structure/hedonic.hpp). The
// engine reproduces this module's candidate order exactly — merge
// collections by size then lexicographic, splits anchored on each
// block's lowest member — while routing every V(S) through a shared
// exec::ValueCache and lifting the block-count ceiling. The historical
// n <= 10 guard is kept here as this API's documented envelope (its
// callers sized their games to it, and its error contract is tested);
// larger games should call structure::hedonic_merge_split directly.
#include "policy/coalition_formation.hpp"

#include <stdexcept>
#include <utility>

#include "structure/hedonic.hpp"

namespace fedshare::policy {

std::vector<double> partition_payoffs(
    const game::Game& g, const game::CoalitionStructure& partition) {
  return structure::partition_payoffs(g, partition);
}

FormationResult merge_split(const game::Game& g, int max_operations) {
  game::CoalitionStructure singles;
  for (int i = 0; i < g.num_players(); ++i) {
    singles.unions.push_back(game::Coalition::single(i));
  }
  return merge_split(g, std::move(singles), max_operations);
}

FormationResult merge_split(const game::Game& g,
                            game::CoalitionStructure start,
                            int max_operations) {
  const int n = g.num_players();
  if (n < 1 || n > 10) {
    throw std::invalid_argument("merge_split: n must be in [1, 10]");
  }
  structure::HedonicOptions options;
  options.max_operations = max_operations;
  structure::HedonicResult r =
      structure::hedonic_merge_split(g, std::move(start), options);
  FormationResult result;
  result.partition = std::move(r.partition);
  result.payoffs = std::move(r.payoffs);
  result.iterations = r.iterations;
  result.converged = r.converged;
  return result;
}

bool is_merge_split_stable(const game::Game& g,
                           const game::CoalitionStructure& partition) {
  return structure::is_merge_split_stable(g, partition);
}

}  // namespace fedshare::policy
