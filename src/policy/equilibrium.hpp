// The resource-provision game (the paper's Sec. 3.3 and Fig. 3 loop).
//
// Facilities choose how many locations to contribute from a discrete
// strategy grid; payoffs are policy-share * V(N) minus provision cost.
// We provide best-response dynamics and exhaustive pure-Nash search for
// small games — the machinery behind the paper's "evolution and possible
// equilibria" discussion and the stability remark in Sec. 4.4.
#pragma once

#include <cstdint>
#include <vector>

#include "model/cost.hpp"
#include "model/demand.hpp"
#include "policy/policy.hpp"

namespace fedshare::policy {

/// The provision game: each facility picks its location count from its
/// strategy grid; the rest of its config stays fixed.
struct ProvisionGame {
  std::vector<model::FacilityConfig> base_configs;
  std::vector<std::vector<int>> strategy_grids;  ///< per facility, ascending
  model::DemandProfile demand;
  model::CostModel cost;  ///< alpha prices each contributed location
};

/// One strategy profile: chosen grid index per facility.
using Profile = std::vector<std::size_t>;

/// Payoff of every facility at `profile`: share_i * V(N) - alpha * L_i.
[[nodiscard]] std::vector<double> profile_payoffs(const ProvisionGame& game,
                                                  const SharingPolicy& policy,
                                                  const Profile& profile);

/// Result of best-response dynamics.
struct BestResponseResult {
  Profile profile;                ///< final profile
  std::vector<double> payoffs;    ///< payoffs at the final profile
  int rounds = 0;                 ///< full sweeps performed
  bool converged = false;         ///< no facility wanted to deviate
};

/// Iterates best responses (facilities in index order) from `start` until
/// a fixed point or `max_rounds` sweeps.
[[nodiscard]] BestResponseResult best_response_dynamics(
    const ProvisionGame& game, const SharingPolicy& policy,
    const Profile& start, int max_rounds = 50);

/// All pure Nash equilibria by exhaustive profile enumeration. The
/// product of grid sizes must be <= 4096 (throws otherwise).
[[nodiscard]] std::vector<Profile> pure_nash_equilibria(
    const ProvisionGame& game, const SharingPolicy& policy);

}  // namespace fedshare::policy
