#include "policy/mixture.hpp"

#include <stdexcept>

#include "core/sharing.hpp"
#include "model/federation.hpp"

namespace fedshare::policy {

std::vector<double> MixtureEstimate::concurrency() const {
  std::vector<double> out(arrival_rates.size());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = arrival_rates[c] * mean_holding[c];
  }
  return out;
}

MixtureEstimate estimate_mixture(const sim::Workload& workload,
                                 std::size_t num_classes) {
  if (!(workload.horizon > 0.0)) {
    throw std::invalid_argument("estimate_mixture: horizon must be > 0");
  }
  workload.validate(num_classes);
  MixtureEstimate est;
  est.arrival_rates.assign(num_classes, 0.0);
  est.mixture.assign(num_classes, 0.0);
  est.mean_holding.assign(num_classes, 0.0);
  std::vector<std::uint64_t> counts(num_classes, 0);
  for (const auto& e : workload.events) {
    ++counts[e.class_index];
    est.mean_holding[e.class_index] += e.holding_time;
    ++est.total_events;
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (counts[c] > 0) {
      est.mean_holding[c] /= static_cast<double>(counts[c]);
    }
    est.arrival_rates[c] =
        static_cast<double>(counts[c]) / workload.horizon;
    if (est.total_events > 0) {
      est.mixture[c] = static_cast<double>(counts[c]) /
                       static_cast<double>(est.total_events);
    }
  }
  return est;
}

std::vector<double> adaptive_weights(
    const model::LocationSpace& space, const MixtureEstimate& estimate,
    const std::vector<model::RequestClass>& class_shapes) {
  if (class_shapes.size() != estimate.arrival_rates.size()) {
    throw std::invalid_argument(
        "adaptive_weights: one shape per estimated class required");
  }
  const std::vector<double> concurrency = estimate.concurrency();
  model::DemandProfile demand;
  for (std::size_t c = 0; c < class_shapes.size(); ++c) {
    if (concurrency[c] <= 0.0) continue;
    model::RequestClass rc = class_shapes[c];
    rc.count = concurrency[c];
    demand.classes.push_back(rc);
  }
  if (demand.classes.empty()) {
    return game::equal_shares(space.num_facilities());
  }
  model::Federation fed(space, std::move(demand));
  return game::shapley_shares(fed.build_game());
}

}  // namespace fedshare::policy
