#include "policy/incentives.hpp"

#include <stdexcept>

#include "model/federation.hpp"

namespace fedshare::policy {

std::vector<IncentivePoint> provision_curve(
    std::vector<model::FacilityConfig> configs, int facility_index,
    const std::vector<int>& location_grid, const model::DemandProfile& demand,
    const SharingPolicy& policy) {
  if (facility_index < 0 ||
      facility_index >= static_cast<int>(configs.size())) {
    throw std::invalid_argument("provision_curve: bad facility index");
  }
  std::vector<IncentivePoint> curve;
  curve.reserve(location_grid.size());
  for (const int locations : location_grid) {
    if (locations < 0) {
      throw std::invalid_argument("provision_curve: negative location count");
    }
    configs[static_cast<std::size_t>(facility_index)].num_locations =
        locations;
    model::Federation fed(model::LocationSpace::disjoint(configs), demand);
    const std::vector<double> shares = policy.shares(fed);
    const double total =
        fed.value(game::Coalition::grand(fed.num_facilities()));
    IncentivePoint pt;
    pt.locations = locations;
    pt.share = shares[static_cast<std::size_t>(facility_index)];
    pt.payoff = pt.share * total;
    curve.push_back(pt);
  }
  return curve;
}

std::vector<double> marginal_payoffs(
    const std::vector<IncentivePoint>& curve) {
  std::vector<double> out;
  if (curve.size() < 2) return out;
  out.reserve(curve.size() - 1);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dl = curve[i].locations - curve[i - 1].locations;
    out.push_back(dl > 0.0 ? (curve[i].payoff - curve[i - 1].payoff) / dl
                           : 0.0);
  }
  return out;
}

}  // namespace fedshare::policy
