#include "policy/sensitivity.hpp"

#include <stdexcept>

#include "exec/pool.hpp"
#include "model/federation.hpp"

namespace fedshare::policy {

namespace {

struct Outcome {
  std::vector<double> shares;
  std::vector<double> payoffs;
};

Outcome evaluate(const std::vector<model::FacilityConfig>& configs,
                 const model::DemandProfile& demand,
                 const SharingPolicy& policy) {
  model::Federation fed(model::LocationSpace::disjoint(configs), demand);
  Outcome out;
  out.shares = policy.shares(fed);
  const double total =
      fed.value(game::Coalition::grand(fed.num_facilities()));
  out.payoffs.resize(out.shares.size());
  for (std::size_t i = 0; i < out.shares.size(); ++i) {
    out.payoffs[i] = out.shares[i] * total;
  }
  return out;
}

}  // namespace

SensitivityReport share_sensitivity(
    const std::vector<model::FacilityConfig>& configs,
    const model::DemandProfile& demand, const SharingPolicy& policy,
    int delta_locations) {
  if (delta_locations < 1) {
    throw std::invalid_argument(
        "share_sensitivity: delta_locations must be >= 1");
  }
  if (configs.empty()) {
    throw std::invalid_argument("share_sensitivity: no facilities");
  }
  const std::size_t n = configs.size();
  const Outcome base = evaluate(configs, demand, policy);

  SensitivityReport report;
  report.delta_locations = delta_locations;
  report.payoffs = base.payoffs;
  report.dpayoff.assign(n, std::vector<double>(n, 0.0));
  report.dshare.assign(n, std::vector<double>(n, 0.0));

  // Each bumped column j is an independent full re-evaluation (its own
  // Federation, game, and policy solve): sweep them in parallel, one
  // result slot per column.
  std::vector<Outcome> moved(n);
  exec::parallel_for(0, n, 1, [&](const exec::ChunkRange& r) {
    const std::size_t j = r.begin;  // chunk size 1: one column per chunk
    std::vector<model::FacilityConfig> bumped = configs;
    if (!bumped[j].custom_units.empty()) {
      // Extend heterogeneous facilities with their mean capacity.
      double mean = 0.0;
      for (const double u : bumped[j].custom_units) mean += u;
      mean /= static_cast<double>(bumped[j].custom_units.size());
      for (int k = 0; k < delta_locations; ++k) {
        bumped[j].custom_units.push_back(mean);
      }
    }
    bumped[j].num_locations += delta_locations;
    moved[j] = evaluate(bumped, demand, policy);
    return true;
  });
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      report.dpayoff[i][j] = (moved[j].payoffs[i] - base.payoffs[i]) /
                             static_cast<double>(delta_locations);
      report.dshare[i][j] = (moved[j].shares[i] - base.shares[i]) /
                            static_cast<double>(delta_locations);
    }
  }
  return report;
}

}  // namespace fedshare::policy
