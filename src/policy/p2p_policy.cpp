#include "policy/p2p_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "alloc/greedy.hpp"

namespace fedshare::policy {

P2PFederationResult p2p_value_sharing(
    const model::LocationSpace& space,
    const std::vector<model::RequestClass>& facility_demands) {
  const int n = space.num_facilities();
  if (facility_demands.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "p2p_value_sharing: one demand class per facility required");
  }
  if (n == 0) {
    P2PFederationResult empty;
    empty.feasible = true;
    return empty;
  }
  const double r = facility_demands.front().units_per_location;
  for (const auto& d : facility_demands) {
    d.validate();
    if (d.units_per_location != r) {
      throw std::invalid_argument(
          "p2p_value_sharing: all facility demands must share "
          "units_per_location");
    }
  }

  const game::Coalition grand = game::Coalition::grand(n);
  const auto pooled = space.pool_for(grand);

  // Slot budget: how many location-slots the pooled infrastructure can
  // host at r units each, capped per location by the total number of
  // user experiments (an experiment uses a location once).
  double total_demand = 0.0;
  for (const auto& d : facility_demands) total_demand += d.count;
  const double budget =
      alloc::slot_budget(pooled.capacity, r, std::max(total_demand, 1.0));

  // IR reference: each facility's own slot budget when acting alone.
  std::vector<double> standalone(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto own = space.pool_for(game::Coalition::single(i));
    standalone[static_cast<std::size_t>(i)] = alloc::slot_budget(
        own.capacity, r,
        std::max(facility_demands[static_cast<std::size_t>(i)].count, 1.0));
  }

  const alloc::P2PResult inner =
      alloc::allocate_p2p(budget, facility_demands, standalone);

  P2PFederationResult out;
  out.feasible = inner.feasible;
  out.slots = inner.slots;
  out.utilities = inner.utilities;
  out.shares = inner.shares;
  out.total_utility = inner.total_utility;

  // Commercial benchmark: the same split machinery with the IR floors
  // removed (standalone = 0), so the gap isolates what the constraints
  // cost rather than differences between allocators.
  const alloc::P2PResult unconstrained = alloc::allocate_p2p(
      budget, facility_demands,
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  out.commercial_optimum = unconstrained.total_utility;
  out.incentive_cost =
      std::max(0.0, out.commercial_optimum - out.total_utility);
  return out;
}

}  // namespace fedshare::policy
