#include "policy/policy.hpp"

#include <stdexcept>

#include "core/nucleolus.hpp"
#include "core/shapley.hpp"

namespace fedshare::policy {

std::vector<double> SharingPolicy::payoffs(
    const model::Federation& federation) const {
  const double total =
      federation.value(game::Coalition::grand(federation.num_facilities()));
  std::vector<double> s = shares(federation);
  for (double& v : s) v *= total;
  return s;
}

std::vector<double> ShapleyPolicy::shares(
    const model::Federation& federation) const {
  return game::shapley_shares(federation.build_game());
}

std::vector<double> ProportionalAvailabilityPolicy::shares(
    const model::Federation& federation) const {
  return game::proportional_shares(federation.availability_weights());
}

std::vector<double> ProportionalConsumptionPolicy::shares(
    const model::Federation& federation) const {
  return game::proportional_shares(federation.consumption_weights());
}

std::vector<double> EqualPolicy::shares(
    const model::Federation& federation) const {
  return game::equal_shares(federation.num_facilities());
}

std::vector<double> NucleolusPolicy::shares(
    const model::Federation& federation) const {
  return game::nucleolus_shares(federation.build_game());
}

std::unique_ptr<SharingPolicy> make_policy(game::Scheme scheme) {
  switch (scheme) {
    case game::Scheme::kShapley:
      return std::make_unique<ShapleyPolicy>();
    case game::Scheme::kProportionalAvailability:
      return std::make_unique<ProportionalAvailabilityPolicy>();
    case game::Scheme::kProportionalConsumption:
      return std::make_unique<ProportionalConsumptionPolicy>();
    case game::Scheme::kEqual:
      return std::make_unique<EqualPolicy>();
    case game::Scheme::kNucleolus:
      return std::make_unique<NucleolusPolicy>();
    case game::Scheme::kBanzhaf:
      break;  // no dedicated policy; fall through to the error
  }
  throw std::invalid_argument("make_policy: unsupported scheme");
}

}  // namespace fedshare::policy
