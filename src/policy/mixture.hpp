// Demand-mixture estimation and adaptive policy weights (Sec. 4.3.2:
// "it is important to be able to classify experiments into a few
// meaningful categories and, based on the expected mixture, adjust the
// federation policies implemented in practice").
//
// estimate_mixture() reduces an observed workload trace to per-class
// arrival rates, mixture shares and mean holding times; via Little's law
// the expected concurrent demand per class is rate * mean holding, which
// adaptive_weights() feeds into the value engine to produce up-to-date
// normalised Shapley weights — the live counterpart of the offline
// weights in policy/weights.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "model/demand.hpp"
#include "model/location_space.hpp"
#include "sim/workload.hpp"

namespace fedshare::policy {

/// Summary statistics of an observed workload.
struct MixtureEstimate {
  std::vector<double> arrival_rates;  ///< events per unit time, per class
  std::vector<double> mixture;        ///< arrival shares (sums to 1)
  std::vector<double> mean_holding;   ///< observed mean holding times
  std::uint64_t total_events = 0;

  /// Expected concurrent experiments per class (Little's law:
  /// rate * mean holding).
  [[nodiscard]] std::vector<double> concurrency() const;
};

/// Estimates the mixture from a trace. `num_classes` fixes the vector
/// sizes (classes with no events get rate 0 and mean holding 0).
/// Requires a positive trace horizon.
[[nodiscard]] MixtureEstimate estimate_mixture(const sim::Workload& workload,
                                               std::size_t num_classes);

/// Adaptive policy weights: builds a demand profile whose class counts
/// are the estimated concurrent demand (shapes — thresholds, units, d —
/// taken from `class_shapes`) and returns the normalised Shapley values
/// of the resulting federation game. `class_shapes` must have one entry
/// per estimated class.
[[nodiscard]] std::vector<double> adaptive_weights(
    const model::LocationSpace& space, const MixtureEstimate& estimate,
    const std::vector<model::RequestClass>& class_shapes);

}  // namespace fedshare::policy
