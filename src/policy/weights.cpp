#include "policy/weights.hpp"

#include <cmath>
#include <stdexcept>

#include "core/sharing.hpp"
#include "model/federation.hpp"

namespace fedshare::policy {

std::vector<double> offline_shapley_weights(
    const model::LocationSpace& space,
    const std::vector<DemandScenario>& scenarios) {
  if (scenarios.empty()) {
    throw std::invalid_argument("offline_shapley_weights: no scenarios");
  }
  double total_prob = 0.0;
  for (const auto& s : scenarios) {
    if (!(s.probability >= 0.0)) {
      throw std::invalid_argument(
          "offline_shapley_weights: negative probability");
    }
    total_prob += s.probability;
  }
  if (total_prob <= 0.0) {
    throw std::invalid_argument(
        "offline_shapley_weights: probabilities sum to zero");
  }
  const auto n = static_cast<std::size_t>(space.num_facilities());
  std::vector<double> weights(n, 0.0);
  for (const auto& s : scenarios) {
    if (s.probability == 0.0) continue;
    model::Federation fed(space, s.demand);  // copies the space
    const std::vector<double> shares =
        game::shapley_shares(fed.build_game());
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] += shares[i] * s.probability / total_prob;
    }
  }
  return weights;
}

double weight_drift(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("weight_drift: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace fedshare::policy
