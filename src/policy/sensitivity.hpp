// Share and payoff sensitivity to contributions.
//
// Policy designers reading Fig. 9 want the local version of it: if
// facility j adds Delta locations, how does every facility's share and
// payoff move under a given sharing policy? share_sensitivity()
// estimates the full Jacobian by forward differences on the location
// counts (the model is piecewise constant in l-thresholds, so a finite
// Delta is the honest derivative here).
#pragma once

#include <vector>

#include "model/demand.hpp"
#include "policy/policy.hpp"

namespace fedshare::policy {

/// Finite-difference Jacobians at a configuration.
struct SensitivityReport {
  int delta_locations = 0;  ///< the step used
  /// d(payoff_i) / d(L_j) estimates: payoff_change[i][j] is facility i's
  /// payoff change per location added by facility j.
  std::vector<std::vector<double>> dpayoff;
  /// d(share_i) / d(L_j) estimates.
  std::vector<std::vector<double>> dshare;
  /// Baseline payoffs at the unperturbed configuration.
  std::vector<double> payoffs;
};

/// Computes the sensitivity report under `policy`. `delta_locations`
/// must be >= 1; configurations are rebuilt with disjoint locations.
[[nodiscard]] SensitivityReport share_sensitivity(
    const std::vector<model::FacilityConfig>& configs,
    const model::DemandProfile& demand, const SharingPolicy& policy,
    int delta_locations = 10);

}  // namespace fedshare::policy
