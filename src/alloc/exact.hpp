// Exact integer allocator for small instances.
//
// Enumerates, per experiment, every subset of locations (with the
// empty set standing for "blocked"), pruning subsets that violate the
// diversity threshold or remaining capacity. Exponential — only for
// validating the greedy allocator in tests and for tiny production
// instances. The search is capped by `max_nodes`; nullopt means the cap
// was hit.
#pragma once

#include <cstdint>
#include <optional>

#include "alloc/allocation.hpp"
#include "runtime/budget.hpp"

namespace fedshare::alloc {

/// Exact optimal allocation by exhaustive search.
///
/// Requirements: every class count must be a non-negative integer, the
/// total experiment count must be <= 8, and the pool must have <= 16
/// locations (throws std::invalid_argument otherwise). Returns nullopt
/// if the node budget — or the optional cooperative `budget` (deadline /
/// cancellation), charged one unit per search node — is exhausted before
/// the search completes. Callers must handle nullopt by degrading to
/// allocate_greedy (see runtime::resilient_allocate for the sanctioned
/// cascade), never by dereferencing blindly.
[[nodiscard]] std::optional<AllocationResult> allocate_exact(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    std::uint64_t max_nodes = std::uint64_t{1} << 24,
    const runtime::ComputeBudget* budget = nullptr);

}  // namespace fedshare::alloc
