// Exact integer allocator for small instances.
//
// Enumerates, per experiment, every subset of locations (with the
// empty set standing for "blocked"), pruning subsets that violate the
// diversity threshold or remaining capacity. Exponential — only for
// validating the greedy allocator in tests and for tiny production
// instances. The search is capped by `max_nodes`; nullopt means the cap
// was hit.
#pragma once

#include <cstdint>
#include <optional>

#include "alloc/allocation.hpp"

namespace fedshare::alloc {

/// Exact optimal allocation by exhaustive search.
///
/// Requirements: every class count must be a non-negative integer, the
/// total experiment count must be <= 8, and the pool must have <= 16
/// locations (throws std::invalid_argument otherwise). Returns nullopt
/// if the node budget is exhausted before the search completes.
[[nodiscard]] std::optional<AllocationResult> allocate_exact(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    std::uint64_t max_nodes = std::uint64_t{1} << 24);

}  // namespace fedshare::alloc
