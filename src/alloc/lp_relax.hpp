// LP relaxation of the allocation problem (upper bound, d <= 1).
//
// Relaxes Eq. (2): assignments become fractional (y_{c,l} in [0, count_c])
// and diversity thresholds are dropped. For d <= 1, per-experiment utility
// satisfies u(x) = x^d <= x on x >= 1, so the LP optimum bounds the true
// optimum from above. Used by tests to sandwich the greedy allocator, by
// the simplex performance bench, and by runtime::resilient_allocate as
// the quality certificate of the greedy fallback.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "alloc/allocation.hpp"
#include "lp/problem.hpp"
#include "lp/revised_simplex.hpp"
#include "runtime/budget.hpp"

namespace fedshare::alloc {

/// Reusable build of the relaxation LP for a *family* of pools over the
/// same location set that differ only in per-location capacities — e.g.
/// one LP per coalition over the grand coalition's locations, with a
/// coalition's uncovered locations patched to capacity 0 (capacity 0
/// forces y_{c,l} = 0 because every class consumes r_c > 0 units, so
/// this is exactly equivalent to dropping the location).
///
/// Constraint layout: capacity row l is constraint l (one per location),
/// followed by the per-location class caps as singleton rows (which
/// lp::RevisedSimplex absorbs into variable bounds, shrinking the basis
/// to one row per location). Build once, then re-target capacities via
/// capacity_patch() — with RevisedSimplex::solve_from_basis this turns
/// a coalition sweep into a chain of warm re-solves.
class RelaxationTemplate {
 public:
  /// Validates `classes` (throws std::invalid_argument for exponents
  /// > 1, like lp_upper_bound) and builds the LP over `num_locations`
  /// locations with all capacities 0. empty() when either dimension is
  /// zero (the relaxation bound is identically 0).
  RelaxationTemplate(std::size_t num_locations,
                     std::vector<RequestClass> classes);

  [[nodiscard]] bool empty() const noexcept { return !problem_.has_value(); }
  /// The template LP (capacities all 0). Requires !empty().
  [[nodiscard]] const lp::Problem& problem() const;
  [[nodiscard]] std::size_t num_locations() const noexcept {
    return num_locations_;
  }
  [[nodiscard]] const std::vector<RequestClass>& classes() const noexcept {
    return classes_;
  }

  /// Patch setting the capacity-row rhs to `capacities` (one entry per
  /// location). Apply to a RevisedSimplex built from problem(), or use
  /// apply_capacities for a dense-solver Problem copy.
  [[nodiscard]] lp::ProblemPatch capacity_patch(
      const std::vector<double>& capacities) const;

  /// Allocation-free capacity_patch for hot sweep loops: overwrites
  /// `patch` in place (identical contents), reusing its vectors.
  void capacity_patch_into(const std::vector<double>& capacities,
                           lp::ProblemPatch& patch) const;

  /// In-place equivalent for the dense path: rewrites the capacity rows
  /// of `prob`, which must be a copy of problem().
  void apply_capacities(lp::Problem& prob,
                        const std::vector<double>& capacities) const;

 private:
  std::size_t num_locations_ = 0;
  std::vector<RequestClass> classes_;
  std::optional<lp::Problem> problem_;
};

/// Upper bound on total utility via the LP relaxation. All class
/// exponents must be <= 1 (throws std::invalid_argument otherwise).
/// Throws std::runtime_error if the LP fails to solve.
[[nodiscard]] double lp_upper_bound(const LocationPool& pool,
                                    const std::vector<RequestClass>& classes);

/// Budgeted variant: the simplex charges `budget` one unit per pivot.
/// Returns nullopt (instead of throwing) when the budget trips or the LP
/// otherwise fails, so fallback cascades can skip the certificate
/// gracefully. Same domain requirements as lp_upper_bound.
[[nodiscard]] std::optional<double> lp_upper_bound_budgeted(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    const runtime::ComputeBudget& budget);

}  // namespace fedshare::alloc
