// LP relaxation of the allocation problem (upper bound, d <= 1).
//
// Relaxes Eq. (2): assignments become fractional (y_{c,l} in [0, count_c])
// and diversity thresholds are dropped. For d <= 1, per-experiment utility
// satisfies u(x) = x^d <= x on x >= 1, so the LP optimum bounds the true
// optimum from above. Used by tests to sandwich the greedy allocator, by
// the simplex performance bench, and by runtime::resilient_allocate as
// the quality certificate of the greedy fallback.
#pragma once

#include <optional>

#include "alloc/allocation.hpp"
#include "runtime/budget.hpp"

namespace fedshare::alloc {

/// Upper bound on total utility via the LP relaxation. All class
/// exponents must be <= 1 (throws std::invalid_argument otherwise).
/// Throws std::runtime_error if the LP fails to solve.
[[nodiscard]] double lp_upper_bound(const LocationPool& pool,
                                    const std::vector<RequestClass>& classes);

/// Budgeted variant: the simplex charges `budget` one unit per pivot.
/// Returns nullopt (instead of throwing) when the budget trips or the LP
/// otherwise fails, so fallback cascades can skip the certificate
/// gracefully. Same domain requirements as lp_upper_bound.
[[nodiscard]] std::optional<double> lp_upper_bound_budgeted(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    const runtime::ComputeBudget& budget);

}  // namespace fedshare::alloc
