// LP relaxation of the allocation problem (upper bound, d <= 1).
//
// Relaxes Eq. (2): assignments become fractional (y_{c,l} in [0, count_c])
// and diversity thresholds are dropped. For d <= 1, per-experiment utility
// satisfies u(x) = x^d <= x on x >= 1, so the LP optimum bounds the true
// optimum from above. Used by tests to sandwich the greedy allocator and
// by the simplex performance bench.
#pragma once

#include "alloc/allocation.hpp"

namespace fedshare::alloc {

/// Upper bound on total utility via the LP relaxation. All class
/// exponents must be <= 1 (throws std::invalid_argument otherwise).
/// Throws std::runtime_error if the LP fails to solve.
[[nodiscard]] double lp_upper_bound(const LocationPool& pool,
                                    const std::vector<RequestClass>& classes);

}  // namespace fedshare::alloc
