#include "alloc/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace fedshare::alloc {

double slot_budget(const std::vector<double>& capacities,
                   double units_per_location, double m) {
  if (units_per_location <= 0.0) {
    throw std::invalid_argument("slot_budget: units_per_location must be > 0");
  }
  double total = 0.0;
  for (const double c : capacities) {
    total += std::min(c / units_per_location, m);
  }
  return total;
}

double max_feasible_experiments(const std::vector<double>& capacities,
                                double units_per_location, double threshold) {
  if (threshold < 1.0) {
    throw std::invalid_argument(
        "max_feasible_experiments: threshold must be >= 1");
  }
  // U(1) < threshold means not even one experiment fits.
  if (slot_budget(capacities, units_per_location, 1.0) < threshold) {
    return 0.0;
  }
  // U(m) - m*threshold is concave with a non-negative value at m = 1;
  // find its upper root by bisection on [1, U(inf)/threshold].
  double lo = 1.0;
  double hi = slot_budget(capacities, units_per_location,
                          std::numeric_limits<double>::infinity()) /
              threshold;
  if (hi <= lo) return lo;
  // If even hi is feasible (possible when U saturates exactly), take it.
  if (slot_budget(capacities, units_per_location, hi) >= hi * threshold) {
    return hi;
  }
  for (int iter = 0; iter < 300; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (slot_budget(capacities, units_per_location, mid) >= mid * threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * std::max(1.0, hi)) break;
  }
  return lo;
}

namespace {

// Convex classes (d > 1): concentrate. Experiments are filled one by one,
// each taking every location that still has a free slot for it, while the
// threshold is met. Experiment j (1-based) can use location l iff
// s_l >= j; its location count is U(j) - U(j-1). Consumes its usage from
// `remaining` directly.
ClassOutcome allocate_convex_class(std::vector<double>& remaining,
                                   const RequestClass& rc) {
  ClassOutcome out;
  const double r = rc.units_per_location;
  const double threshold = rc.effective_threshold();
  const double m_star = max_feasible_experiments(remaining, r, threshold);
  if (m_star <= 0.0) return out;

  double total_utility = 0.0;
  double total_slots = 0.0;
  double served = 0.0;
  const auto max_m =
      static_cast<long>(std::floor(std::min(rc.count, m_star)));
  double prev_budget = 0.0;
  for (long j = 1; j <= max_m; ++j) {
    const double budget = slot_budget(remaining, r, static_cast<double>(j));
    const double x = budget - prev_budget;
    if (x < threshold) break;
    total_utility += std::pow(x, rc.exponent);
    total_slots = budget;
    served += 1.0;
    prev_budget = budget;
  }
  if (served == 0.0) return out;
  out.served = served;
  out.locations_per_experiment = total_slots / served;
  out.utility = total_utility;
  out.units = r * total_slots;
  for (double& cap : remaining) {
    const double take = r * std::min(cap / r, served);
    cap -= take;
  }
  return out;
}

}  // namespace

AllocationResult allocate_greedy(const LocationPool& pool,
                                 const std::vector<RequestClass>& classes) {
  pool.validate();
  for (const auto& rc : classes) rc.validate();

  const std::size_t num_loc = pool.num_locations();
  AllocationResult result;
  result.per_class.resize(classes.size());
  result.units_per_location.assign(num_loc, 0.0);

  // Admission priority: cheapest units-per-utility first (ascending r);
  // within equal cost, hardest diversity threshold first — frugal
  // reservations mean the easy classes lose nothing by waiting, while
  // threshold-gated classes must be admitted before the slack is spread.
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (classes[a].units_per_location !=
                         classes[b].units_per_location) {
                       return classes[a].units_per_location <
                              classes[b].units_per_location;
                     }
                     return classes[a].min_locations >
                            classes[b].min_locations;
                   });

  std::vector<double> remaining = pool.capacity;
  std::vector<std::vector<double>> used(
      classes.size(), std::vector<double>(num_loc, 0.0));
  std::vector<double> served(classes.size(), 0.0);

  // Phase 1 — frugal admission: each admitted experiment reserves exactly
  // its threshold in location-slots, spread across locations pro-rata to
  // the water-filling profile min(s_l, m) so a feasible assignment of
  // distinct locations exists.
  for (const std::size_t idx : order) {
    const RequestClass& rc = classes[idx];
    if (rc.count <= 0.0 || num_loc == 0) continue;
    if (rc.exponent > 1.0) {
      // Convex classes take their full concentrated allocation here; the
      // per-location usage is min(s_l, served) slots.
      std::vector<double> before = remaining;
      ClassOutcome oc = allocate_convex_class(remaining, rc);
      for (std::size_t l = 0; l < num_loc; ++l) {
        used[idx][l] = before[l] - remaining[l];
      }
      served[idx] = oc.served;
      result.per_class[idx] = std::move(oc);
      continue;
    }
    const double r = rc.units_per_location;
    const double threshold = rc.effective_threshold();
    const double m_star = max_feasible_experiments(remaining, r, threshold);
    const double m = std::min(rc.count, m_star);
    if (m <= 0.0) continue;
    served[idx] = m;
    // Reserve m * threshold slots from the most-abundant locations first
    // (best-fit): scarce locations stay free for later, tighter classes.
    std::vector<std::size_t> loc_order(num_loc);
    std::iota(loc_order.begin(), loc_order.end(), std::size_t{0});
    std::stable_sort(loc_order.begin(), loc_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return remaining[a] > remaining[b];
                     });
    double need = m * threshold;
    for (const std::size_t l : loc_order) {
      if (need <= 1e-12) break;
      const double take_slots =
          std::min({remaining[l] / r, m, need});
      used[idx][l] += take_slots * r;
      remaining[l] -= take_slots * r;
      need -= take_slots;
    }
  }

  // Phase 2 — fill: leftover capacity goes to already-admitted concave
  // classes (utility is non-decreasing in slots for d <= 1), capped per
  // location at the class's water-filling ceiling min(s_l^orig, m).
  for (const std::size_t idx : order) {
    const RequestClass& rc = classes[idx];
    if (served[idx] <= 0.0 || rc.exponent > 1.0) continue;
    const double r = rc.units_per_location;
    for (std::size_t l = 0; l < num_loc; ++l) {
      const double ceiling =
          r * std::min(pool.capacity[l] / r, served[idx]);
      const double extra =
          std::min(remaining[l], ceiling - used[idx][l]);
      if (extra > 0.0) {
        used[idx][l] += extra;
        remaining[l] -= extra;
      }
    }
  }

  // Assemble outcomes.
  for (std::size_t idx = 0; idx < classes.size(); ++idx) {
    const RequestClass& rc = classes[idx];
    if (rc.exponent <= 1.0) {
      ClassOutcome oc;
      if (served[idx] > 0.0) {
        const double units = std::accumulate(used[idx].begin(),
                                             used[idx].end(), 0.0);
        const double slots = units / rc.units_per_location;
        const double x = slots / served[idx];
        oc.served = served[idx];
        oc.locations_per_experiment = x;
        oc.utility = served[idx] * std::pow(x, rc.exponent);
        oc.units = units;
      }
      result.per_class[idx] = oc;
    }
    result.total_utility += result.per_class[idx].utility;
    result.total_units += result.per_class[idx].units;
    for (std::size_t l = 0; l < num_loc; ++l) {
      result.units_per_location[l] += used[idx][l];
    }
  }
  return result;
}

}  // namespace fedshare::alloc
