#include "alloc/lp_relax.hpp"

#include <stdexcept>

#include "lp/simplex.hpp"

namespace fedshare::alloc {

RelaxationTemplate::RelaxationTemplate(std::size_t num_locations,
                                       std::vector<RequestClass> classes)
    : num_locations_(num_locations), classes_(std::move(classes)) {
  for (const auto& rc : classes_) {
    rc.validate();
    if (rc.exponent > 1.0) {
      throw std::invalid_argument(
          "lp_upper_bound: only valid for exponents <= 1");
    }
  }
  const std::size_t num_cls = classes_.size();
  if (num_locations_ == 0 || num_cls == 0) return;

  // Variable y[c * num_loc + l]: class-c experiment-assignments at
  // location l. Objective: one utility unit per assignment (d <= 1 bound).
  lp::Problem prob(num_cls * num_locations_, lp::Objective::kMaximize);
  for (std::size_t v = 0; v < num_cls * num_locations_; ++v) {
    prob.set_objective_coefficient(v, 1.0);
  }
  // Capacity: sum_c y_{c,l} * r_c <= C_l (constraint l, patched later).
  for (std::size_t l = 0; l < num_locations_; ++l) {
    std::vector<double> row(num_cls * num_locations_, 0.0);
    for (std::size_t c = 0; c < num_cls; ++c) {
      row[c * num_locations_ + l] = classes_[c].units_per_location;
    }
    prob.add_constraint(std::move(row), lp::Relation::kLessEqual, 0.0);
  }
  // Per-location class cap: y_{c,l} <= count_c (an experiment uses a
  // location at most once, so at most count_c class-c uses per location).
  for (std::size_t c = 0; c < num_cls; ++c) {
    for (std::size_t l = 0; l < num_locations_; ++l) {
      std::vector<double> row(num_cls * num_locations_, 0.0);
      row[c * num_locations_ + l] = 1.0;
      prob.add_constraint(std::move(row), lp::Relation::kLessEqual,
                          classes_[c].count);
    }
  }
  problem_ = std::move(prob);
}

const lp::Problem& RelaxationTemplate::problem() const {
  if (!problem_) {
    throw std::logic_error("RelaxationTemplate: empty template has no LP");
  }
  return *problem_;
}

lp::ProblemPatch RelaxationTemplate::capacity_patch(
    const std::vector<double>& capacities) const {
  if (capacities.size() != num_locations_) {
    throw std::invalid_argument(
        "RelaxationTemplate: need one capacity per location");
  }
  lp::ProblemPatch patch;
  capacity_patch_into(capacities, patch);
  return patch;
}

void RelaxationTemplate::capacity_patch_into(
    const std::vector<double>& capacities, lp::ProblemPatch& patch) const {
  if (capacities.size() != num_locations_) {
    throw std::invalid_argument(
        "RelaxationTemplate: need one capacity per location");
  }
  patch.bounds.clear();
  patch.rhs.clear();
  patch.rhs.reserve(num_locations_);
  for (std::size_t l = 0; l < num_locations_; ++l) {
    patch.rhs.push_back({l, capacities[l]});
  }
}

void RelaxationTemplate::apply_capacities(
    lp::Problem& prob, const std::vector<double>& capacities) const {
  if (capacities.size() != num_locations_) {
    throw std::invalid_argument(
        "RelaxationTemplate: need one capacity per location");
  }
  for (std::size_t l = 0; l < num_locations_; ++l) {
    prob.set_constraint_rhs(l, capacities[l]);
  }
}

namespace {

// Builds the relaxation LP for one concrete pool; shared by the throwing
// and budgeted entry points. Returns nullopt for the trivial empty
// instance (bound 0).
std::optional<lp::Problem> build_relaxation(
    const LocationPool& pool, const std::vector<RequestClass>& classes) {
  pool.validate();
  RelaxationTemplate tmpl(pool.num_locations(), classes);
  if (tmpl.empty()) return std::nullopt;
  lp::Problem prob = tmpl.problem();
  tmpl.apply_capacities(prob, pool.capacity);
  return prob;
}

}  // namespace

double lp_upper_bound(const LocationPool& pool,
                      const std::vector<RequestClass>& classes) {
  const auto prob = build_relaxation(pool, classes);
  if (!prob) return 0.0;
  const lp::Solution sol = lp::solve(*prob);
  if (!sol.optimal()) {
    throw std::runtime_error("lp_upper_bound: LP solve failed");
  }
  return sol.objective;
}

std::optional<double> lp_upper_bound_budgeted(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    const runtime::ComputeBudget& budget) {
  const auto prob = build_relaxation(pool, classes);
  if (!prob) return 0.0;
  lp::SimplexOptions options;
  options.budget = &budget;
  const lp::Solution sol = lp::solve(*prob, options);
  if (!sol.optimal()) return std::nullopt;
  return sol.objective;
}

}  // namespace fedshare::alloc
