#include "alloc/lp_relax.hpp"

#include <stdexcept>

#include "lp/simplex.hpp"

namespace fedshare::alloc {

namespace {

// Builds the relaxation LP; shared by the throwing and budgeted entry
// points. Returns nullopt for the trivial empty instance (bound 0).
std::optional<lp::Problem> build_relaxation(
    const LocationPool& pool, const std::vector<RequestClass>& classes) {
  pool.validate();
  for (const auto& rc : classes) {
    rc.validate();
    if (rc.exponent > 1.0) {
      throw std::invalid_argument(
          "lp_upper_bound: only valid for exponents <= 1");
    }
  }
  const std::size_t num_loc = pool.num_locations();
  const std::size_t num_cls = classes.size();
  if (num_loc == 0 || num_cls == 0) return std::nullopt;

  // Variable y[c * num_loc + l]: class-c experiment-assignments at
  // location l. Objective: one utility unit per assignment (d <= 1 bound).
  lp::Problem prob(num_cls * num_loc, lp::Objective::kMaximize);
  for (std::size_t v = 0; v < num_cls * num_loc; ++v) {
    prob.set_objective_coefficient(v, 1.0);
  }
  // Capacity: sum_c y_{c,l} * r_c <= C_l.
  for (std::size_t l = 0; l < num_loc; ++l) {
    std::vector<double> row(num_cls * num_loc, 0.0);
    for (std::size_t c = 0; c < num_cls; ++c) {
      row[c * num_loc + l] = classes[c].units_per_location;
    }
    prob.add_constraint(std::move(row), lp::Relation::kLessEqual,
                        pool.capacity[l]);
  }
  // Per-location class cap: y_{c,l} <= count_c (an experiment uses a
  // location at most once, so at most count_c class-c uses per location).
  for (std::size_t c = 0; c < num_cls; ++c) {
    for (std::size_t l = 0; l < num_loc; ++l) {
      std::vector<double> row(num_cls * num_loc, 0.0);
      row[c * num_loc + l] = 1.0;
      prob.add_constraint(std::move(row), lp::Relation::kLessEqual,
                          classes[c].count);
    }
  }
  return prob;
}

}  // namespace

double lp_upper_bound(const LocationPool& pool,
                      const std::vector<RequestClass>& classes) {
  const auto prob = build_relaxation(pool, classes);
  if (!prob) return 0.0;
  const lp::Solution sol = lp::solve(*prob);
  if (!sol.optimal()) {
    throw std::runtime_error("lp_upper_bound: LP solve failed");
  }
  return sol.objective;
}

std::optional<double> lp_upper_bound_budgeted(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    const runtime::ComputeBudget& budget) {
  const auto prob = build_relaxation(pool, classes);
  if (!prob) return 0.0;
  lp::SimplexOptions options;
  options.budget = &budget;
  const lp::Solution sol = lp::solve(*prob, options);
  if (!sol.optimal()) return std::nullopt;
  return sol.objective;
}

}  // namespace fedshare::alloc
