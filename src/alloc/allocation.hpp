// Resource-allocation problem types (the paper's Eq. 2).
//
// A coalition pools its locations into a LocationPool; demand arrives as
// RequestClasses (groups of identical experiments). An allocator assigns
// distinct locations to experiments, maximising total threshold-power
// utility u(x) = x^d for x >= l (Eq. 1).
//
// Continuous relaxation: experiment counts, location slots, and location
// assignments are modelled as continuous quantities. This matches the
// paper's numerical analysis (which evaluates closed forms) and keeps the
// allocator exact for the d = 1 settings of Figs. 4-9; the exact integer
// solver in exact.hpp validates it on small instances.
#pragma once

#include <cstddef>
#include <vector>

namespace fedshare::alloc {

/// Per-location available capacity, in resource units (the paper's R).
struct LocationPool {
  std::vector<double> capacity;

  [[nodiscard]] std::size_t num_locations() const noexcept {
    return capacity.size();
  }
  [[nodiscard]] double total_capacity() const noexcept;

  /// Validates that all capacities are finite and non-negative; throws
  /// std::invalid_argument otherwise.
  void validate() const;
};

/// A group of identical experiments (Sec. 2.2's demand attributes).
struct RequestClass {
  double count = 1.0;               ///< number of experiments requesting
  double min_locations = 0.0;       ///< diversity threshold l (>= 0)
  double units_per_location = 1.0;  ///< resources per location r (> 0)
  double exponent = 1.0;            ///< utility shape d (> 0)
  double holding_time = 1.0;        ///< t; used by the DES, not here

  /// Effective threshold: an experiment with zero locations has zero
  /// utility, so the binding minimum is max(l, 1) in the continuous model.
  [[nodiscard]] double effective_threshold() const noexcept;

  /// Throws std::invalid_argument if any field is out of domain.
  void validate() const;
};

/// Outcome for one request class.
struct ClassOutcome {
  double served = 0.0;                    ///< experiments admitted
  double locations_per_experiment = 0.0;  ///< mean x over served
  double utility = 0.0;                   ///< total class utility
  double units = 0.0;                     ///< resource units consumed
};

/// Full allocation outcome.
struct AllocationResult {
  double total_utility = 0.0;
  double total_units = 0.0;
  std::vector<ClassOutcome> per_class;
  /// Units consumed at each location (for consumption attribution to the
  /// facilities providing that location, Eq. 7).
  std::vector<double> units_per_location;
};

}  // namespace fedshare::alloc
