// P2P-scenario allocator (the paper's Eq. 3).
//
// In the P2P scenario the federation's value flows to facilities through
// the resources allocated to their own affiliated users, so allocation
// and value sharing are the same decision. Each facility i has an
// aggregate demand (a RequestClass from its users); the allocator splits
// the pooled location-slot budget into x_i per facility, maximising
// sum_i u^f_i(x_i) subject to individual rationality:
// u^f_i(x_i) >= u^f_i(standalone_i) — each facility must do at least as
// well as acting alone (Eq. 3's second constraint).
//
// The facility-level utility u^f_i(x) treats the facility's users as
// identical experiments sharing x location-slots (equal split for
// d <= 1, concentration for d > 1), mirroring greedy.hpp at the
// aggregate level. Thresholds make u^f non-concave, so the solver first
// reserves each facility's IR floor and then distributes the remaining
// budget by discrete marginal-utility ascent (chunked so threshold jumps
// are visible to the search).
#pragma once

#include <vector>

#include "alloc/allocation.hpp"

namespace fedshare::alloc {

/// Aggregate utility of giving `slots` location-slots to a facility whose
/// users form `demand`. Pure closed form; exposed for tests.
[[nodiscard]] double demand_utility(const RequestClass& demand, double slots);

/// Outcome of the P2P allocation.
struct P2PResult {
  bool feasible = false;            ///< IR floors all satisfiable
  std::vector<double> slots;        ///< x_i per facility
  std::vector<double> utilities;    ///< u^f_i(x_i)
  std::vector<double> shares;       ///< s_i = u_i / sum_j u_j (Sec. 3.1)
  double total_utility = 0.0;
};

/// Splits `total_slots` of pooled capacity across facilities.
/// `demands[i]` is facility i's aggregate user demand and
/// `standalone_slots[i]` the slot budget it could muster alone (its IR
/// reference point). `resolution` controls the ascent granularity
/// (fraction of total_slots per step; default 1/2000).
[[nodiscard]] P2PResult allocate_p2p(
    double total_slots, const std::vector<RequestClass>& demands,
    const std::vector<double>& standalone_slots, double resolution = 5e-4);

}  // namespace fedshare::alloc
