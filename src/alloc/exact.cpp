#include "alloc/exact.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fedshare::alloc {

namespace {

struct SearchState {
  const std::vector<const RequestClass*>* experiments = nullptr;
  std::vector<double> remaining;  // per-location capacity
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;
  const runtime::ComputeBudget* budget = nullptr;
  bool aborted = false;

  double best_utility = -1.0;
  std::vector<std::uint32_t> best_assignment;  // location mask per experiment
  std::vector<std::uint32_t> current;
};

void search(SearchState& st, std::size_t idx, double utility_so_far) {
  if (st.aborted) return;
  if (++st.nodes > st.max_nodes ||
      (st.budget != nullptr && !st.budget->charge())) {
    st.aborted = true;
    return;
  }
  const auto& experiments = *st.experiments;
  if (idx == experiments.size()) {
    if (utility_so_far > st.best_utility) {
      st.best_utility = utility_so_far;
      st.best_assignment = st.current;
    }
    return;
  }
  const RequestClass& rc = *experiments[idx];
  const double r = rc.units_per_location;
  const auto num_loc = st.remaining.size();
  const std::uint32_t full = (num_loc >= 32)
                                 ? ~std::uint32_t{0}
                                 : ((std::uint32_t{1} << num_loc) - 1);
  // Option: block the experiment.
  st.current[idx] = 0;
  search(st, idx + 1, utility_so_far);
  // Options: every capacity-feasible subset meeting the threshold.
  const auto threshold =
      static_cast<int>(std::ceil(rc.effective_threshold() - 1e-9));
  for (std::uint32_t subset = 1; subset <= full && !st.aborted; ++subset) {
    const int x = __builtin_popcount(subset);
    if (x < threshold) continue;
    bool feasible = true;
    for (std::size_t l = 0; l < num_loc; ++l) {
      if ((subset >> l) & 1u) {
        if (st.remaining[l] < r - 1e-9) {
          feasible = false;
          break;
        }
      }
    }
    if (!feasible) continue;
    for (std::size_t l = 0; l < num_loc; ++l) {
      if ((subset >> l) & 1u) st.remaining[l] -= r;
    }
    st.current[idx] = subset;
    search(st, idx + 1, utility_so_far + std::pow(x, rc.exponent));
    for (std::size_t l = 0; l < num_loc; ++l) {
      if ((subset >> l) & 1u) st.remaining[l] += r;
    }
  }
  st.current[idx] = 0;
}

}  // namespace

std::optional<AllocationResult> allocate_exact(
    const LocationPool& pool, const std::vector<RequestClass>& classes,
    std::uint64_t max_nodes, const runtime::ComputeBudget* budget) {
  pool.validate();
  if (pool.num_locations() > 16) {
    throw std::invalid_argument("allocate_exact: at most 16 locations");
  }
  std::vector<const RequestClass*> experiments;
  std::vector<std::size_t> class_of;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    classes[c].validate();
    const double count = classes[c].count;
    if (std::abs(count - std::round(count)) > 1e-9) {
      throw std::invalid_argument(
          "allocate_exact: class counts must be integers");
    }
    for (long k = 0; k < static_cast<long>(std::llround(count)); ++k) {
      experiments.push_back(&classes[c]);
      class_of.push_back(c);
    }
  }
  if (experiments.size() > 8) {
    throw std::invalid_argument("allocate_exact: at most 8 experiments");
  }

  SearchState st;
  st.experiments = &experiments;
  st.remaining = pool.capacity;
  st.max_nodes = max_nodes;
  st.budget = budget;
  st.current.assign(experiments.size(), 0);
  search(st, 0, 0.0);
  if (st.aborted) return std::nullopt;

  AllocationResult result;
  result.per_class.resize(classes.size());
  result.units_per_location.assign(pool.num_locations(), 0.0);
  result.total_utility = std::max(0.0, st.best_utility);
  for (std::size_t e = 0; e < experiments.size(); ++e) {
    const std::uint32_t subset = st.best_assignment.empty()
                                     ? 0u
                                     : st.best_assignment[e];
    if (subset == 0) continue;
    const RequestClass& rc = *experiments[e];
    const int x = __builtin_popcount(subset);
    ClassOutcome& oc = result.per_class[class_of[e]];
    oc.served += 1.0;
    oc.locations_per_experiment += x;  // converted to mean below
    oc.utility += std::pow(x, rc.exponent);
    oc.units += rc.units_per_location * x;
    result.total_units += rc.units_per_location * x;
    for (std::size_t l = 0; l < pool.num_locations(); ++l) {
      if ((subset >> l) & 1u) {
        result.units_per_location[l] += rc.units_per_location;
      }
    }
  }
  for (auto& oc : result.per_class) {
    if (oc.served > 0.0) oc.locations_per_experiment /= oc.served;
  }
  return result;
}

}  // namespace fedshare::alloc
