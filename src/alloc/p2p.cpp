#include "alloc/p2p.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedshare::alloc {

double demand_utility(const RequestClass& demand, double slots) {
  demand.validate();
  if (slots <= 0.0 || demand.count <= 0.0) return 0.0;
  const double threshold = demand.effective_threshold();
  if (slots < threshold) return 0.0;
  if (demand.exponent <= 1.0) {
    // Serve as many users as the budget allows (each needs >= threshold
    // slots), then split the whole budget equally — optimal under
    // concavity.
    const double m = std::min(demand.count, slots / threshold);
    const double x = slots / m;
    return m * std::pow(x, demand.exponent);
  }
  // Convex: concentrate. Users are served sequentially with `threshold`
  // slots minimum; the optimum gives all surplus to one user.
  const double m = std::min(demand.count, std::floor(slots / threshold));
  if (m < 1.0) return 0.0;
  const double surplus = slots - m * threshold;
  return (m - 1.0) * std::pow(threshold, demand.exponent) +
         std::pow(threshold + surplus, demand.exponent);
}

P2PResult allocate_p2p(double total_slots,
                       const std::vector<RequestClass>& demands,
                       const std::vector<double>& standalone_slots,
                       double resolution) {
  if (demands.size() != standalone_slots.size()) {
    throw std::invalid_argument(
        "allocate_p2p: demands and standalone_slots size mismatch");
  }
  if (!(total_slots >= 0.0)) {
    throw std::invalid_argument("allocate_p2p: total_slots must be >= 0");
  }
  if (!(resolution > 0.0 && resolution <= 0.5)) {
    throw std::invalid_argument("allocate_p2p: resolution out of (0, 0.5]");
  }
  const std::size_t n = demands.size();
  P2PResult result;
  result.slots.assign(n, 0.0);
  result.utilities.assign(n, 0.0);
  result.shares.assign(n, 0.0);
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // IR floors: the least x_i achieving the standalone utility. Since
  // u^f is non-decreasing in slots, the standalone slot budget itself is
  // a valid (if not minimal) floor; shrink it by bisection where utility
  // allows (flat regions caused by thresholds).
  std::vector<double> floor_slots(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double target = demand_utility(demands[i], standalone_slots[i]);
    if (target <= 0.0) continue;
    double lo = 0.0;
    double hi = standalone_slots[i];
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (demand_utility(demands[i], mid) >= target - 1e-12) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    floor_slots[i] = hi;
  }
  const double floor_total =
      std::accumulate(floor_slots.begin(), floor_slots.end(), 0.0);
  if (floor_total > total_slots + 1e-9) {
    return result;  // infeasible: pooled capacity below IR floors
  }

  result.slots = floor_slots;
  double remaining = total_slots - floor_total;

  // Marginal-utility ascent. The chunk is sized so one step can cross a
  // threshold jump (min over facilities of their effective threshold)
  // but never below the resolution grain.
  double chunk = total_slots * resolution;
  for (const auto& d : demands) {
    chunk = std::max(chunk, 1e-12);
    (void)d;
  }
  if (chunk <= 0.0) chunk = 1e-6;
  while (remaining > 1e-9) {
    const double step = std::min(chunk, remaining);
    std::size_t best = n;
    double best_gain = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Look ahead far enough to clear facility i's threshold if the
      // plain step would land in its dead zone.
      const double here = demand_utility(demands[i], result.slots[i]);
      double gain = demand_utility(demands[i], result.slots[i] + step) - here;
      if (gain <= 0.0) {
        const double jump =
            demands[i].effective_threshold() - result.slots[i];
        if (jump > 0.0 && jump <= remaining) {
          const double jump_gain =
              demand_utility(demands[i], result.slots[i] + jump) - here;
          if (jump_gain > 0.0) gain = jump_gain * step / jump;  // pro-rata
        }
      }
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n) break;  // no facility benefits from more slots
    // If the winner is mid-threshold-jump, grant the full jump at once.
    const double jump = demands[best].effective_threshold() -
                        result.slots[best];
    const double grant =
        (jump > 0.0 && jump <= remaining &&
         demand_utility(demands[best], result.slots[best] + step) <=
             demand_utility(demands[best], result.slots[best]))
            ? jump
            : step;
    result.slots[best] += grant;
    remaining -= grant;
  }

  result.feasible = true;
  for (std::size_t i = 0; i < n; ++i) {
    result.utilities[i] = demand_utility(demands[i], result.slots[i]);
    result.total_utility += result.utilities[i];
  }
  if (result.total_utility > 1e-12) {
    for (std::size_t i = 0; i < n; ++i) {
      result.shares[i] = result.utilities[i] / result.total_utility;
    }
  } else {
    std::fill(result.shares.begin(), result.shares.end(),
              1.0 / static_cast<double>(n));
  }
  return result;
}

}  // namespace fedshare::alloc
