// Two-phase water-filling allocator ("admit frugally, then fill").
//
// With per-location slots s_l = C_l / r, define
//
//   U(m) = sum_l min(s_l, m)   — the most location-slots m experiments can
//                                consume (each uses a location at most once),
//   m*   = max m with U(m) >= m * threshold (feasibility is an interval
//          because U is concave and m*threshold is linear).
//
// Phase 1 (admission): classes are visited by priority — ascending r
// (cheapest utility per unit first), then *descending* threshold, so
// diversity-gated classes are admitted before slack is spread. Each
// admitted concave-class experiment reserves exactly its threshold in
// slots, pro-rata to the water-filling profile min(s_l, m). Convex
// classes (d > 1) instead take their full concentrated allocation
// (experiments filled one by one with every available distinct location).
//
// Phase 2 (fill): leftover capacity is granted to the admitted concave
// classes up to their per-location ceiling min(s_l, m) — for d <= 1,
// utility m^(1-d) * slots^d is non-decreasing in slots, and an equal
// split among the class's experiments is optimal under concavity.
//
// On single-class instances and the paper's configurations (d = 1,
// common r) this is exactly optimal; under adversarial multi-class
// contention it is a heuristic, which tests/test_alloc_property.cpp
// sandwiches between the exact integer solver and the LP upper bound on
// randomized small instances.
#pragma once

#include "alloc/allocation.hpp"

namespace fedshare::alloc {

/// Allocates `classes` on `pool`, returning per-class outcomes and
/// per-location consumption. Inputs are validated; see file comment for
/// the algorithm and its optimality domain.
[[nodiscard]] AllocationResult allocate_greedy(
    const LocationPool& pool, const std::vector<RequestClass>& classes);

/// The slot-budget function U(m) = sum_l min(capacity_l / r, m) used by
/// the greedy (exposed for tests and the analytic benches).
[[nodiscard]] double slot_budget(const std::vector<double>& capacities,
                                 double units_per_location, double m);

/// Largest m with U(m) >= m * threshold (0 if even one experiment cannot
/// reach the threshold). `threshold` must be >= 1.
[[nodiscard]] double max_feasible_experiments(
    const std::vector<double>& capacities, double units_per_location,
    double threshold);

}  // namespace fedshare::alloc
