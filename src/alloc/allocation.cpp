#include "alloc/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedshare::alloc {

double LocationPool::total_capacity() const noexcept {
  return std::accumulate(capacity.begin(), capacity.end(), 0.0);
}

void LocationPool::validate() const {
  for (const double c : capacity) {
    if (!std::isfinite(c) || c < 0.0) {
      throw std::invalid_argument(
          "LocationPool: capacities must be finite and non-negative");
    }
  }
}

double RequestClass::effective_threshold() const noexcept {
  return std::max(min_locations, 1.0);
}

void RequestClass::validate() const {
  if (!std::isfinite(count) || count < 0.0) {
    throw std::invalid_argument("RequestClass: count must be >= 0");
  }
  if (!std::isfinite(min_locations) || min_locations < 0.0) {
    throw std::invalid_argument("RequestClass: min_locations must be >= 0");
  }
  if (!std::isfinite(units_per_location) || units_per_location <= 0.0) {
    throw std::invalid_argument(
        "RequestClass: units_per_location must be > 0");
  }
  if (!std::isfinite(exponent) || exponent <= 0.0) {
    throw std::invalid_argument("RequestClass: exponent must be > 0");
  }
  if (!std::isfinite(holding_time) || holding_time <= 0.0) {
    throw std::invalid_argument("RequestClass: holding_time must be > 0");
  }
}

}  // namespace fedshare::alloc
