#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fedshare::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column header");
  }
  aligns_.assign(headers_.size(), Align::kRight);
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::invalid_argument("Table::set_align: column out of range");
  }
  aligns_[column] = align;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (aligns_[c] == Align::kLeft && c + 1 != cells.size()) {
        out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string format_double(double value, int precision) {
  if (precision < 0) precision = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

void print_heading(std::ostream& out, std::string_view title) {
  out << '\n' << title << '\n' << std::string(title.size(), '=') << '\n';
}

}  // namespace fedshare::io
