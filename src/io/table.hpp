// Aligned text-table formatting for benchmark and example output.
//
// The figure-reproduction harnesses print the data series behind each of
// the paper's plots; Table gives them a uniform, diff-friendly layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fedshare::io {

/// Column alignment inside a Table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers once, append rows, stream it out.
///
/// Numeric cells should be pre-formatted by the caller (see format_double);
/// Table only handles layout. Rows shorter than the header are padded with
/// empty cells; longer rows throw std::invalid_argument.
class Table {
 public:
  /// Creates a table with the given column headers (at least one).
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. Must not have more cells than there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Number of columns (fixed at construction).
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

  /// Sets the alignment for one column (default is kRight).
  void set_align(std::size_t column, Align align);

  /// Renders the table (header, separator, rows) to `out`.
  void print(std::ostream& out) const;

  /// Renders the table into a string (convenience for tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// Formats a double as a percentage with `precision` digits, e.g. "12.3%".
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

/// Prints a section heading (title underlined with '=') to `out`.
void print_heading(std::ostream& out, std::string_view title);

}  // namespace fedshare::io
