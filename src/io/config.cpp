#include "io/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace fedshare::io {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ConfigError::ConfigError(const std::string& message, int line)
    : std::runtime_error(line > 0 ? "line " + std::to_string(line) + ": " +
                                        message
                                  : message),
      line_(line) {}

std::optional<std::string> ConfigSection::find(const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

int ConfigSection::entry_line(const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key == key) return e.line;
  }
  return line;
}

std::string ConfigSection::get_string(const std::string& key) const {
  const auto value = find(key);
  if (!value) {
    throw ConfigError("section [" + name + "] is missing key '" + key + "'",
                      line);
  }
  return *value;
}

double ConfigSection::get_double(const std::string& key) const {
  const std::string raw = get_string(key);
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &used);
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' in [" + name +
                          "] is not a number: '" + raw + "'",
                      entry_line(key));
  }
  if (used != raw.size()) {
    throw ConfigError("key '" + key + "' in [" + name +
                          "] has trailing junk: '" + raw + "'",
                      entry_line(key));
  }
  if (!std::isfinite(value)) {
    throw ConfigError("key '" + key + "' in [" + name +
                          "] must be finite, got '" + raw + "'",
                      entry_line(key));
  }
  return value;
}

double ConfigSection::get_double_or(const std::string& key,
                                    double fallback) const {
  return find(key) ? get_double(key) : fallback;
}

Config Config::parse(std::istream& in) {
  Config config;
  std::string raw_line;
  int line_number = 0;
  while (std::getline(in, raw_line)) {
    ++line_number;
    std::string line = trim(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ConfigError("unterminated section header", line_number);
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        throw ConfigError("empty section name", line_number);
      }
      ConfigSection section;
      section.name = name;
      section.line = line_number;
      config.sections.push_back(std::move(section));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("expected 'key = value' or '[section]'",
                        line_number);
    }
    if (config.sections.empty()) {
      throw ConfigError("entry before any [section] header", line_number);
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw ConfigError("empty key", line_number);
    }
    ConfigSection& section = config.sections.back();
    if (section.find(key)) {
      throw ConfigError("duplicate key '" + key + "' in section [" +
                            section.name + "]",
                        line_number);
    }
    section.entries.push_back({key, value, line_number});
  }
  return config;
}

Config Config::parse_string(const std::string& text) {
  std::istringstream iss(text);
  return parse(iss);
}

std::vector<const ConfigSection*> Config::sections_named(
    const std::string& name) const {
  std::vector<const ConfigSection*> out;
  for (const auto& section : sections) {
    if (section.name == name) out.push_back(&section);
  }
  return out;
}

}  // namespace fedshare::io
