// Minimal INI-style configuration parser for the fedshare CLI.
//
// Grammar: `[section]` headers, `key = value` entries, `#`/`;` comments,
// blank lines. Repeated section names are allowed (each `[facility]`
// block describes one facility); repeated keys within one section are an
// error. All errors carry 1-based line numbers.
#pragma once

#include <istream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fedshare::io {

/// Parse or lookup failure, with the offending line where applicable.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(const std::string& message, int line = 0);

  /// 1-based line number; 0 when the error is not tied to a line.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// One `key = value` line.
struct ConfigEntry {
  std::string key;
  std::string value;
  int line = 0;  ///< 1-based line of the entry
};

/// One `[name]` block with its entries in file order.
struct ConfigSection {
  std::string name;
  int line = 0;  ///< line of the section header
  std::vector<ConfigEntry> entries;

  /// Raw value for `key`, or nullopt.
  [[nodiscard]] std::optional<std::string> find(const std::string& key) const;

  /// Line number of `key`'s entry; the section header's line when the
  /// key is absent. Lets validation errors point at the offending line.
  [[nodiscard]] int entry_line(const std::string& key) const;

  /// Required string value; throws ConfigError when absent.
  [[nodiscard]] std::string get_string(const std::string& key) const;

  /// Required double; throws ConfigError (carrying the entry's line) when
  /// absent, malformed, or not finite (nan/inf are config errors: no
  /// model quantity accepts them).
  [[nodiscard]] double get_double(const std::string& key) const;

  /// Optional double with a default.
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;
};

/// A parsed configuration file.
struct Config {
  std::vector<ConfigSection> sections;

  /// Parses from a stream; throws ConfigError on malformed input.
  static Config parse(std::istream& in);

  /// Parses from a string (convenience for tests).
  static Config parse_string(const std::string& text);

  /// All sections with the given name, in file order.
  [[nodiscard]] std::vector<const ConfigSection*> sections_named(
      const std::string& name) const;
};

}  // namespace fedshare::io
