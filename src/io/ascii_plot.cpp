#include "io/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/table.hpp"

namespace fedshare::io {

namespace {
constexpr char kGlyphs[] = "123456789abcdefghijklmnopqrstuvwxyz";
}  // namespace

AsciiPlot::AsciiPlot(int width, int height) : width_(width), height_(height) {
  if (width < 8 || height < 8) {
    throw std::invalid_argument("AsciiPlot: width and height must be >= 8");
  }
}

void AsciiPlot::add_series(Series series) {
  if (series.x.size() != series.y.size()) {
    throw std::invalid_argument("AsciiPlot: x/y size mismatch");
  }
  if (series.x.empty()) return;
  if (series_.size() >= sizeof(kGlyphs) - 1) {
    throw std::invalid_argument("AsciiPlot: too many series");
  }
  series_.push_back(std::move(series));
}

void AsciiPlot::set_y_range(double y_min, double y_max) {
  if (!(y_min < y_max)) {
    throw std::invalid_argument("AsciiPlot: need y_min < y_max");
  }
  fixed_y_ = true;
  y_min_ = y_min;
  y_max_ = y_max;
}

void AsciiPlot::print(std::ostream& out) const {
  if (series_.empty()) {
    out << "(empty plot)\n";
    return;
  }
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = fixed_y_ ? y_min_ : std::numeric_limits<double>::infinity();
  double y_max = fixed_y_ ? y_max_ : -std::numeric_limits<double>::infinity();
  for (const auto& s : series_) {
    for (const double v : s.x) {
      x_min = std::min(x_min, v);
      x_max = std::max(x_max, v);
    }
    if (!fixed_y_) {
      for (const double v : s.y) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si];
    const auto& s = series_[si];
    for (std::size_t p = 0; p < s.x.size(); ++p) {
      const double fx = (s.x[p] - x_min) / (x_max - x_min);
      const double fy = (s.y[p] - y_min) / (y_max - y_min);
      if (fy < 0.0 || fy > 1.0) continue;  // outside a fixed y-range
      const int col = std::clamp(
          static_cast<int>(std::lround(fx * (width_ - 1))), 0, width_ - 1);
      const int row = std::clamp(
          static_cast<int>(std::lround((1.0 - fy) * (height_ - 1))), 0,
          height_ - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          glyph;
    }
  }

  const std::string top = format_double(y_max, 2);
  const std::string bottom = format_double(y_min, 2);
  const std::size_t margin = std::max(top.size(), bottom.size());
  for (int r = 0; r < height_; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = std::string(margin - top.size(), ' ') + top;
    if (r == height_ - 1) {
      label = std::string(margin - bottom.size(), ' ') + bottom;
    }
    out << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+'
      << std::string(static_cast<std::size_t>(width_), '-') << '\n';
  const std::string lo = format_double(x_min, 1);
  const std::string hi = format_double(x_max, 1);
  out << std::string(margin + 2, ' ') << lo;
  const std::size_t used = lo.size();
  if (static_cast<std::size_t>(width_) > used + hi.size()) {
    out << std::string(static_cast<std::size_t>(width_) - used - hi.size(),
                       ' ')
        << hi;
  }
  out << '\n';
  if (!x_label_.empty()) {
    out << std::string(margin + 2, ' ') << "x: " << x_label_ << '\n';
  }
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << "  [" << kGlyphs[si] << "] " << series_[si].name << '\n';
  }
}

std::string AsciiPlot::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace fedshare::io
