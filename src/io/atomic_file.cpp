#include "io/atomic_file.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fedshare::io {

namespace {

// Table-driven CRC-32 (IEEE 802.3 reflected polynomial). Built once;
// thread-safe via static-init guarantees.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Directory part of `path` ("." when the path has no separator), for
// the post-rename directory fsync.
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#ifndef _WIN32
bool fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t written = 0;
    bool ok = true;
    while (ok && written < content.size()) {
      const ssize_t n =
          ::write(fd, content.data() + written, content.size() - written);
      if (n < 0) {
        ok = false;
      } else {
        written += static_cast<std::size_t>(n);
      }
    }
    if (ok) ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // The rename is only durable once the directory entry is; a failure
  // here leaves the file correct in the running system, so report it
  // but do not undo.
  return fsync_path(dir_of(path), O_RDONLY | O_DIRECTORY);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#endif
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buf).str();
}

bool append_file(const std::string& path, std::string_view content,
                 bool sync) {
#ifndef _WIN32
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  if (ok && sync) ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  (void)sync;
  return static_cast<bool>(out);
#endif
}

}  // namespace fedshare::io
