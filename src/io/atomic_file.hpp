// Crash-safe file primitives for the durability layer.
//
// The serve checkpoints and the durable event log both need the classic
// POSIX write protocol: write the full payload to a temporary file in
// the destination directory, fsync it, rename() over the final name
// (atomic within a filesystem), then fsync the directory so the rename
// itself survives a power cut. A reader after a crash therefore sees
// either the old file, the new file, or a stray "*.tmp" it can ignore —
// never a half-written final file. On top of that, payloads carry a
// trailing CRC-32 so a reader can *detect* the cases the protocol
// cannot prevent (a corrupt sector, a checkpoint copied off a dying
// disk) and fall back instead of trusting garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fedshare::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG checksum) of
/// `data`. Deterministic across platforms; used as the whole-file
/// checksum trailer of serve checkpoints.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Writes `content` to `path` atomically: temp file in the same
/// directory, fsync, rename, directory fsync. Returns false (leaving
/// any previous `path` intact and cleaning up the temp file) if any
/// step fails. The temp file is `path` + ".tmp", so recovery scans can
/// ignore strays by suffix.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view content);

/// Reads the whole file into a string; nullopt if it cannot be opened
/// or read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Appends `content` to `path` (creating it if missing) with one write
/// call, then flushes; with `sync` also fsyncs the file descriptor so
/// the append is durable before returning. Returns false on any
/// failure. One call per log line keeps the torn-write model honest: a
/// crash mid-append leaves a *prefix* of this content, nothing else.
[[nodiscard]] bool append_file(const std::string& path,
                               std::string_view content, bool sync);

}  // namespace fedshare::io
