// ASCII line plots so the bench binaries can show the *shape* of each
// reproduced figure directly in the terminal (who wins, where crossovers
// fall), next to the exact numeric tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedshare::io {

/// One named series of (x, y) points; x values may differ between series.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders one or more series into a character grid.
///
/// Each series is drawn with its own glyph (1, 2, 3, ... then a, b, c ...).
/// Overlapping points show the glyph of the later series. Axis ranges are
/// computed from the data unless fixed via set_y_range().
class AsciiPlot {
 public:
  /// Creates a plot area of `width` x `height` characters (both >= 8).
  AsciiPlot(int width, int height);

  /// Adds a series; empty series are ignored. x and y must match in size.
  void add_series(Series series);

  /// Fixes the y-axis range instead of auto-scaling (min < max required).
  void set_y_range(double y_min, double y_max);

  /// Sets the x-axis label printed under the plot.
  void set_x_label(std::string label) { x_label_ = std::move(label); }

  /// Renders the plot, a legend, and axis annotations to `out`.
  void print(std::ostream& out) const;

  /// Renders into a string (convenience for tests).
  [[nodiscard]] std::string to_string() const;

 private:
  int width_;
  int height_;
  bool fixed_y_ = false;
  double y_min_ = 0.0;
  double y_max_ = 1.0;
  std::string x_label_;
  std::vector<Series> series_;
};

}  // namespace fedshare::io
