// Minimal CSV writer used by the figure harnesses to dump the raw series
// behind each plot (so the numbers can be re-plotted externally).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fedshare::io {

/// Streams rows of comma-separated values, quoting cells when needed.
///
/// Quoting follows RFC 4180: a cell containing a comma, a double quote, or
/// a newline is wrapped in quotes with inner quotes doubled.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row (any cell count; typically the header first).
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles with the given precision.
  void write_row(const std::vector<double>& values, int precision = 6);

  /// Number of rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes a single cell according to RFC 4180 (exposed for tests).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace fedshare::io
