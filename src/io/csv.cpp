#include "io/csv.hpp"

#include <ostream>

#include "io/table.hpp"

namespace fedshare::io {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_double(v, precision));
  write_row(cells);
}

}  // namespace fedshare::io
