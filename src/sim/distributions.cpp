#include "sim/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace fedshare::sim {

double exponential(Xoshiro256& rng, double mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("exponential: mean must be > 0");
  }
  // Inverse CDF on (0, 1]: avoid log(0) by flipping the uniform.
  const double u = 1.0 - rng.uniform();
  return -mean * std::log(u);
}

double pareto(Xoshiro256& rng, double minimum, double shape) {
  if (!(minimum > 0.0) || !(shape > 0.0)) {
    throw std::invalid_argument("pareto: minimum and shape must be > 0");
  }
  const double u = 1.0 - rng.uniform();
  return minimum / std::pow(u, 1.0 / shape);
}

double HoldingTimeModel::sample(Xoshiro256& rng, double mean) const {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("HoldingTimeModel: mean must be > 0");
  }
  switch (kind) {
    case Kind::kDeterministic:
      return mean;
    case Kind::kExponential:
      return exponential(rng, mean);
    case Kind::kPareto: {
      if (!(pareto_shape > 1.0)) {
        throw std::invalid_argument(
            "HoldingTimeModel: pareto_shape must be > 1 for a finite mean");
      }
      const double minimum = mean * (pareto_shape - 1.0) / pareto_shape;
      return pareto(rng, minimum, pareto_shape);
    }
  }
  return mean;
}

PoissonProcess::PoissonProcess(double rate, double start)
    : rate_(rate), current_(start) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("PoissonProcess: rate must be > 0");
  }
}

double PoissonProcess::next(Xoshiro256& rng) {
  current_ += exponential(rng, 1.0 / rate_);
  return current_;
}

}  // namespace fedshare::sim
