#include "sim/loss_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>
#include <stdexcept>

namespace fedshare::sim {

double erlang_b(double erlangs, int servers) {
  if (erlangs < 0.0 || servers < 0) {
    throw std::invalid_argument("erlang_b: need erlangs >= 0, servers >= 0");
  }
  if (erlangs == 0.0) return 0.0;
  // B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = erlangs * b / (static_cast<double>(k) + erlangs * b);
  }
  return b;
}

std::vector<double> kaufman_roberts(int capacity,
                                    const std::vector<KrClass>& classes) {
  if (capacity < 0) {
    throw std::invalid_argument("kaufman_roberts: capacity must be >= 0");
  }
  for (const auto& c : classes) {
    if (c.offered_load < 0.0 || c.circuits_per_call < 1) {
      throw std::invalid_argument(
          "kaufman_roberts: loads >= 0, circuits_per_call >= 1");
    }
  }
  // Unnormalised occupancy distribution q(j), j = 0..capacity:
  // j*q(j) = sum_c a_c * b_c * q(j - b_c).
  std::vector<double> q(static_cast<std::size_t>(capacity) + 1, 0.0);
  q[0] = 1.0;
  for (int j = 1; j <= capacity; ++j) {
    double sum = 0.0;
    for (const auto& c : classes) {
      if (c.circuits_per_call <= j) {
        sum += c.offered_load * c.circuits_per_call *
               q[static_cast<std::size_t>(j - c.circuits_per_call)];
      }
    }
    q[static_cast<std::size_t>(j)] = sum / j;
  }
  double norm = 0.0;
  for (const double x : q) norm += x;

  std::vector<double> blocking(classes.size(), 0.0);
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const int b = classes[ci].circuits_per_call;
    double tail = 0.0;
    for (int j = capacity - b + 1; j <= capacity; ++j) {
      if (j >= 0) tail += q[static_cast<std::size_t>(j)];
    }
    blocking[ci] = norm > 0.0 ? tail / norm : 1.0;
  }
  return blocking;
}

ReducedLoadResult reduced_load_blocking(double call_arrival_rate,
                                        double mean_holding_time,
                                        int locations_needed,
                                        int total_locations,
                                        int servers_per_location,
                                        int max_iterations, double tolerance) {
  if (!(call_arrival_rate >= 0.0) || !(mean_holding_time > 0.0)) {
    throw std::invalid_argument(
        "reduced_load_blocking: bad arrival rate or holding time");
  }
  if (locations_needed < 1 || total_locations < locations_needed ||
      servers_per_location < 1) {
    throw std::invalid_argument(
        "reduced_load_blocking: need 1 <= locations_needed <= "
        "total_locations and servers_per_location >= 1");
  }
  // Each accepted call picks locations uniformly; a location carries a
  // fraction locations_needed / total_locations of accepted calls. With
  // per-location blocking B, admitted calls are thinned by the other
  // locations' acceptance: reduced load per location
  //   a = lambda * t * (l/L) * (1 - B)^(l - 1).
  const double base_load = call_arrival_rate * mean_holding_time *
                           static_cast<double>(locations_needed) /
                           static_cast<double>(total_locations);
  double b = 0.0;
  ReducedLoadResult out;
  for (int it = 0; it < max_iterations; ++it) {
    const double thinned =
        base_load *
        std::pow(1.0 - b, static_cast<double>(locations_needed - 1));
    const double next = erlang_b(thinned, servers_per_location);
    ++out.iterations;
    if (std::abs(next - b) < tolerance) {
      b = next;
      out.converged = true;
      break;
    }
    // Damped update for stability at high load.
    b = 0.5 * b + 0.5 * next;
  }
  out.link_blocking = b;
  out.call_blocking =
      1.0 - std::pow(1.0 - b, static_cast<double>(locations_needed));
  return out;
}

double log_binomial_lower_tail(int k, int n, double p) {
  if (n < 0 || k < 0 || k > n + 1 || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "log_binomial_lower_tail: need 0 <= k <= n+1 and p in [0, 1]");
  }
  if (k == 0) return -std::numeric_limits<double>::infinity();
  if (k == n + 1) return 0.0;  // whole distribution
  if (p == 0.0) return 0.0;    // X = 0 < k surely (k >= 1)
  if (p == 1.0) {
    // X = n; tail is non-empty only if n < k, handled by k == n+1 above.
    return -std::numeric_limits<double>::infinity();
  }
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    const double log_c = std::lgamma(n + 1.0) - std::lgamma(j + 1.0) -
                         std::lgamma(n - j + 1.0);
    const double t = log_c + j * log_p + (n - j) * log_q;
    terms[static_cast<std::size_t>(j)] = t;
    max_term = std::max(max_term, t);
  }
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (const double t : terms) sum += std::exp(t - max_term);
  return std::min(0.0, max_term + std::log(sum));
}

ReducedLoadResult any_k_blocking(double call_arrival_rate,
                                 double mean_holding_time,
                                 int locations_needed, int total_locations,
                                 int servers_per_location,
                                 int max_iterations, double tolerance) {
  if (!(call_arrival_rate >= 0.0) || !(mean_holding_time > 0.0)) {
    throw std::invalid_argument(
        "any_k_blocking: bad arrival rate or holding time");
  }
  if (locations_needed < 1 || total_locations < locations_needed ||
      servers_per_location < 1) {
    throw std::invalid_argument(
        "any_k_blocking: need 1 <= locations_needed <= total_locations "
        "and servers_per_location >= 1");
  }
  const double base_load = call_arrival_rate * mean_holding_time *
                           static_cast<double>(locations_needed) /
                           static_cast<double>(total_locations);
  ReducedLoadResult out;
  double b_call = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    const double thinned = base_load * (1.0 - b_call);
    const double p_busy = erlang_b(thinned, servers_per_location);
    // Blocked iff fewer than k locations have a free server:
    // #free ~ Binomial(L, 1 - p_busy).
    const double next = std::exp(log_binomial_lower_tail(
        locations_needed, total_locations, 1.0 - p_busy));
    ++out.iterations;
    out.link_blocking = p_busy;
    if (std::abs(next - b_call) < tolerance) {
      b_call = next;
      out.converged = true;
      break;
    }
    b_call = 0.5 * b_call + 0.5 * next;
  }
  out.call_blocking = b_call;
  return out;
}

}  // namespace fedshare::sim
