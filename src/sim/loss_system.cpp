#include "sim/loss_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedshare::sim {

LossSystem::LossSystem(const alloc::LocationPool& pool,
                       std::vector<alloc::RequestClass> classes,
                       double warmup, LocationPolicy policy)
    : classes_(std::move(classes)), free_units_(pool.capacity),
      down_(pool.num_locations(), false), warmup_(warmup), policy_(policy),
      last_change_(warmup) {
  pool.validate();
  for (const auto& rc : classes_) rc.validate();
  if (warmup < 0.0) {
    throw std::invalid_argument("LossSystem: warmup must be >= 0");
  }
  stats_.assign(classes_.size(), ClassStats{});
}

void LossSystem::add_outage(const Outage& outage) {
  outage.validate(free_units_.size());
  if (outage.start < events_.now()) {
    throw std::invalid_argument(
        "LossSystem::add_outage: outage starts in the past");
  }
  const std::size_t loc = outage.location;
  events_.schedule(outage.start, [this, loc](double) { down_[loc] = true; });
  events_.schedule(outage.end, [this, loc](double) { down_[loc] = false; });
}

void LossSystem::track_busy(double now, double delta) {
  if (now >= warmup_) {
    busy_integral_ += busy_now_ * (now - last_change_);
    last_change_ = now;
  }
  busy_now_ += delta;
}

void LossSystem::advance_to(double now) { events_.run_until(now); }

bool LossSystem::offer(std::size_t class_index, double now,
                       double holding_time) {
  if (class_index >= classes_.size()) {
    throw std::invalid_argument("LossSystem::offer: bad class index");
  }
  if (!(holding_time > 0.0)) {
    throw std::invalid_argument("LossSystem::offer: holding_time must be > 0");
  }
  if (now < events_.now()) {
    throw std::invalid_argument("LossSystem::offer: time went backwards");
  }
  advance_to(now);

  const alloc::RequestClass& rc = classes_[class_index];
  ClassStats& stats = stats_[class_index];
  const bool counted = now >= warmup_;
  if (counted) ++stats.arrivals;

  const double r = rc.units_per_location;
  std::vector<std::size_t> eligible;
  for (std::size_t l = 0; l < free_units_.size(); ++l) {
    if (!down_[l] && free_units_[l] >= r - 1e-12) eligible.push_back(l);
  }
  const auto threshold = static_cast<std::size_t>(
      std::ceil(rc.effective_threshold() - 1e-12));
  if (eligible.size() < threshold) {
    if (counted) ++stats.blocked;
    return false;
  }
  std::size_t take = eligible.size();
  if (policy_ == LocationPolicy::kThresholdOnly) {
    take = threshold;
    // Prefer the fullest eligible locations (best-fit packing).
    std::nth_element(eligible.begin(),
                     eligible.begin() + static_cast<std::ptrdiff_t>(take) - 1,
                     eligible.end(), [&](std::size_t a, std::size_t b) {
                       return free_units_[a] < free_units_[b];
                     });
    eligible.resize(take);
  }
  for (const std::size_t l : eligible) free_units_[l] -= r;
  const double units_taken = r * static_cast<double>(take);
  track_busy(now, units_taken);
  if (counted) {
    ++stats.admitted;
    stats.utility += std::pow(static_cast<double>(take), rc.exponent);
  }
  events_.schedule(now + holding_time,
                   [this, held = eligible, r, units_taken](double t) {
                     for (const std::size_t l : held) free_units_[l] += r;
                     track_busy(t, -units_taken);
                   });
  return true;
}

void LossSystem::finish(double t) {
  advance_to(t);
  track_busy(t, 0.0);
}

}  // namespace fedshare::sim
