// Synthetic workload traces and trace replay.
//
// The paper's user-behaviour analysis rests on PlanetLab measurement
// data (CoMon, its ref. [23]) that is not publicly reproducible; this
// module substitutes synthetic traces with the same structure: per-class
// Poisson or diurnally-modulated (NHPP, via thinning) arrivals with the
// class's holding-time distribution. Traces are plain data — they can be
// generated once, inspected, and replayed against any coalition's pool
// with identical arrivals (paired comparisons across policies).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/multiplex_sim.hpp"

namespace fedshare::sim {

/// One arrival in a trace.
struct TraceEvent {
  double arrival_time = 0.0;
  std::size_t class_index = 0;
  double holding_time = 0.0;
};

/// A generated (or hand-built) workload trace, sorted by arrival time.
struct Workload {
  std::vector<TraceEvent> events;
  double horizon = 0.0;

  /// Throws std::invalid_argument if events are unsorted, have bad
  /// fields, or reference classes >= num_classes.
  void validate(std::size_t num_classes) const;

  /// Arrivals per class (size = max class index + 1; empty when no
  /// events).
  [[nodiscard]] std::vector<std::uint64_t> arrivals_per_class() const;
};

/// Sinusoidal rate modulation: rate(t) = base * (1 + depth * sin(2 pi
/// t / period)). depth in [0, 1); period > 0.
struct DiurnalPattern {
  double period = 24.0;
  double depth = 0.5;

  void validate() const;
};

/// Generates a trace for `classes` over [0, horizon]. With a pattern,
/// arrivals form an NHPP sampled by thinning; without, plain Poisson.
/// Holding times follow `holding_time` per class mean. Deterministic
/// given `seed`.
[[nodiscard]] Workload generate_workload(
    const std::vector<TrafficClass>& classes, double horizon,
    std::uint64_t seed,
    const std::optional<DiurnalPattern>& pattern = std::nullopt,
    const HoldingTimeModel& holding_time = {});

/// Replays a trace against `pool` using the same admission semantics as
/// simulate_multiplexing. `classes` supplies the request shapes (the
/// trace carries times only). `warmup`/`policy`/`outages` come from
/// `config`; its horizon/seed/holding-time fields are ignored (the trace
/// determines them).
[[nodiscard]] SimResult replay_workload(const alloc::LocationPool& pool,
                                        const std::vector<TrafficClass>& classes,
                                        const Workload& workload,
                                        const SimConfig& config);

}  // namespace fedshare::sim
