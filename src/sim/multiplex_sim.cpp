#include "sim/multiplex_sim.hpp"

#include <queue>
#include <stdexcept>

#include "sim/loss_system.hpp"

namespace fedshare::sim {

void Outage::validate(std::size_t num_locations) const {
  if (location >= num_locations) {
    throw std::invalid_argument("Outage: location out of range");
  }
  if (!(end > start) || start < 0.0) {
    throw std::invalid_argument("Outage: need 0 <= start < end");
  }
}

SimResult simulate_multiplexing(const alloc::LocationPool& pool,
                                const std::vector<TrafficClass>& classes,
                                const SimConfig& config) {
  pool.validate();
  std::vector<alloc::RequestClass> requests;
  requests.reserve(classes.size());
  for (const auto& tc : classes) {
    tc.request.validate();
    if (!(tc.arrival_rate > 0.0)) {
      throw std::invalid_argument(
          "simulate_multiplexing: arrival_rate must be > 0");
    }
    requests.push_back(tc.request);
  }
  if (!(config.horizon > config.warmup) || config.warmup < 0.0) {
    throw std::invalid_argument(
        "simulate_multiplexing: need 0 <= warmup < horizon");
  }

  Xoshiro256 rng(config.seed);
  LossSystem system(pool, requests, config.warmup, config.location_policy);
  for (const auto& outage : config.outages) system.add_outage(outage);

  // Merge the per-class Poisson streams in global time order.
  struct Pending {
    double time;
    std::size_t cls;
    bool operator>(const Pending& other) const noexcept {
      if (time != other.time) return time > other.time;
      return cls > other.cls;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap;
  std::vector<PoissonProcess> processes;
  processes.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    processes.emplace_back(classes[c].arrival_rate);
    const double t = processes[c].next(rng);
    if (t <= config.horizon) heap.push({t, c});
  }
  while (!heap.empty()) {
    const Pending next = heap.top();
    heap.pop();
    const double hold = config.holding_time.sample(
        rng, classes[next.cls].request.holding_time);
    system.offer(next.cls, next.time, hold);
    const double t = processes[next.cls].next(rng);
    if (t <= config.horizon) heap.push({t, next.cls});
  }
  system.finish(config.horizon);

  SimResult result;
  result.per_class = system.stats();
  result.measured_time = config.horizon - config.warmup;
  double total_utility = 0.0;
  for (const auto& s : result.per_class) total_utility += s.utility;
  result.utility_rate = total_utility / result.measured_time;
  result.mean_busy_units = system.busy_integral() / result.measured_time;
  return result;
}

}  // namespace fedshare::sim
