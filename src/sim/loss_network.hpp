// Analytic loss-network formulas (the paper's Sec. 6 future-work
// direction, after Paschalidis & Liu).
//
// Provides Erlang-B for single-class links and the Kaufman-Roberts
// recursion for multi-class links, plus a reduced-load (Erlang fixed
// point) approximation for an experiment that must be admitted at
// several locations at once. These give closed-form cross-checks for the
// multiplexing simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace fedshare::sim {

/// Erlang-B blocking probability for offered load `erlangs` on an
/// integer-capacity link of `servers` circuits. Uses the numerically
/// stable recursive form. servers >= 0, erlangs >= 0.
[[nodiscard]] double erlang_b(double erlangs, int servers);

/// One class for Kaufman-Roberts: offered load (erlangs) and the integer
/// number of circuits one call occupies.
struct KrClass {
  double offered_load = 0.0;
  int circuits_per_call = 1;
};

/// Kaufman-Roberts recursion: per-class blocking probabilities on a
/// shared link of `capacity` circuits. capacity >= 0; loads >= 0;
/// circuits_per_call >= 1.
[[nodiscard]] std::vector<double> kaufman_roberts(
    int capacity, const std::vector<KrClass>& classes);

/// Reduced-load approximation for "diversity" calls that need one circuit
/// at each of `locations_needed` distinct locations, where every location
/// is an independent Erlang link of `servers_per_location` circuits and
/// the per-location offered load (including thinning) is found by fixed-
/// point iteration. Returns the end-to-end blocking probability of a
/// call, i.e. 1 - (1 - B)^locations_needed at the fixed point.
struct ReducedLoadResult {
  double call_blocking = 0.0;      ///< probability a call is blocked
  double link_blocking = 0.0;      ///< per-location blocking at fixed point
  int iterations = 0;              ///< fixed-point iterations used
  bool converged = false;
};

[[nodiscard]] ReducedLoadResult reduced_load_blocking(
    double call_arrival_rate, double mean_holding_time, int locations_needed,
    int total_locations, int servers_per_location, int max_iterations = 200,
    double tolerance = 1e-10);

/// Log of the binomial lower tail P(X < k) for X ~ Binomial(n, p),
/// computed stably in log space (returns -inf for a zero tail).
/// Requires 0 <= k <= n+1 and p in [0, 1].
[[nodiscard]] double log_binomial_lower_tail(int k, int n, double p);

/// Blocking for "any k of L" diversity calls: an arrival is admitted iff
/// at least `locations_needed` of the `total_locations` locations have a
/// free server — the admission rule of the multiplexing simulator and of
/// the paper's experiments (any sufficiently large set of distinct
/// locations will do, unlike a fixed loss-network route). Per-location
/// occupancy is an Erlang link fed the thinned per-location load
/// lambda * t * k / L * (1 - B_call); the call blocking is the binomial
/// tail P(free locations < k) at the fixed point.
[[nodiscard]] ReducedLoadResult any_k_blocking(
    double call_arrival_rate, double mean_holding_time, int locations_needed,
    int total_locations, int servers_per_location, int max_iterations = 200,
    double tolerance = 1e-10);

}  // namespace fedshare::sim
