#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/loss_system.hpp"

namespace fedshare::sim {

void Workload::validate(std::size_t num_classes) const {
  if (!(horizon >= 0.0)) {
    throw std::invalid_argument("Workload: horizon must be >= 0");
  }
  double prev = 0.0;
  for (const auto& e : events) {
    if (e.arrival_time < prev) {
      throw std::invalid_argument("Workload: events must be time-sorted");
    }
    if (e.arrival_time > horizon) {
      throw std::invalid_argument("Workload: event beyond horizon");
    }
    if (!(e.holding_time > 0.0)) {
      throw std::invalid_argument("Workload: holding_time must be > 0");
    }
    if (e.class_index >= num_classes) {
      throw std::invalid_argument("Workload: class index out of range");
    }
    prev = e.arrival_time;
  }
}

std::vector<std::uint64_t> Workload::arrivals_per_class() const {
  std::vector<std::uint64_t> counts;
  for (const auto& e : events) {
    if (e.class_index >= counts.size()) counts.resize(e.class_index + 1, 0);
    ++counts[e.class_index];
  }
  return counts;
}

void DiurnalPattern::validate() const {
  if (!(period > 0.0) || depth < 0.0 || depth >= 1.0) {
    throw std::invalid_argument(
        "DiurnalPattern: need period > 0 and depth in [0, 1)");
  }
}

Workload generate_workload(const std::vector<TrafficClass>& classes,
                           double horizon, std::uint64_t seed,
                           const std::optional<DiurnalPattern>& pattern,
                           const HoldingTimeModel& holding_time) {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("generate_workload: horizon must be > 0");
  }
  if (pattern) pattern->validate();
  for (const auto& tc : classes) {
    tc.request.validate();
    if (!(tc.arrival_rate > 0.0)) {
      throw std::invalid_argument(
          "generate_workload: arrival_rate must be > 0");
    }
  }

  Xoshiro256 rng(seed);
  Workload workload;
  workload.horizon = horizon;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const double base = classes[c].arrival_rate;
    // Thinning envelope: the peak rate of the modulated process.
    const double peak =
        pattern ? base * (1.0 + pattern->depth) : base;
    PoissonProcess proc(peak);
    for (double t = proc.next(rng); t <= horizon; t = proc.next(rng)) {
      if (pattern) {
        const double rate =
            base * (1.0 + pattern->depth *
                              std::sin(2.0 * M_PI * t / pattern->period));
        if (rng.uniform() * peak > rate) continue;  // thinned out
      }
      TraceEvent e;
      e.arrival_time = t;
      e.class_index = c;
      e.holding_time =
          holding_time.sample(rng, classes[c].request.holding_time);
      workload.events.push_back(e);
    }
  }
  std::stable_sort(workload.events.begin(), workload.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  return workload;
}

SimResult replay_workload(const alloc::LocationPool& pool,
                          const std::vector<TrafficClass>& classes,
                          const Workload& workload,
                          const SimConfig& config) {
  pool.validate();
  workload.validate(classes.size());
  std::vector<alloc::RequestClass> requests;
  requests.reserve(classes.size());
  for (const auto& tc : classes) {
    tc.request.validate();
    requests.push_back(tc.request);
  }
  if (!(workload.horizon > config.warmup) || config.warmup < 0.0) {
    throw std::invalid_argument(
        "replay_workload: need 0 <= warmup < trace horizon");
  }

  LossSystem system(pool, requests, config.warmup, config.location_policy);
  for (const auto& outage : config.outages) system.add_outage(outage);
  for (const auto& e : workload.events) {
    system.offer(e.class_index, e.arrival_time, e.holding_time);
  }
  system.finish(workload.horizon);

  SimResult result;
  result.per_class = system.stats();
  result.measured_time = workload.horizon - config.warmup;
  double total_utility = 0.0;
  for (const auto& s : result.per_class) total_utility += s.utility;
  result.utility_rate = total_utility / result.measured_time;
  result.mean_busy_units = system.busy_integral() / result.measured_time;
  return result;
}

}  // namespace fedshare::sim
