// Random variates for the discrete-event simulator.
//
// All samplers draw from Xoshiro256 and are deterministic given the seed.
#pragma once

#include <vector>

#include "sim/rng.hpp"

namespace fedshare::sim {

/// Exponential variate with the given mean (> 0).
[[nodiscard]] double exponential(Xoshiro256& rng, double mean);

/// Pareto (Lomax-shifted) variate with minimum x_m > 0 and shape a > 0.
/// Mean is finite only for a > 1 (x_m * a / (a - 1)); used for the
/// heavy-tailed holding-time extension.
[[nodiscard]] double pareto(Xoshiro256& rng, double minimum, double shape);

/// Deterministic "variate": always returns `value` (> 0). Lets the
/// simulator treat fixed holding times uniformly with random ones.
struct HoldingTimeModel {
  enum class Kind { kDeterministic, kExponential, kPareto };
  Kind kind = Kind::kDeterministic;
  double pareto_shape = 2.5;  ///< only for kPareto

  /// Draws a holding time with the given mean under this model.
  [[nodiscard]] double sample(Xoshiro256& rng, double mean) const;
};

/// Poisson-process arrival-time generator: successive calls return
/// exponentially spaced absolute times starting from `start`.
class PoissonProcess {
 public:
  /// rate > 0 events per unit time.
  PoissonProcess(double rate, double start = 0.0);

  /// Absolute time of the next arrival.
  [[nodiscard]] double next(Xoshiro256& rng);

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  double current_;
};

}  // namespace fedshare::sim
