#include "sim/rng.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fedshare::sim {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("Xoshiro256::uniform: need lo < hi");
  }
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("Xoshiro256::below: bound must be > 0");
  }
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::vector<int> sample_without_replacement(Xoshiro256& rng, int n, int k) {
  if (k < 0 || n < 0 || k > n) {
    throw std::invalid_argument(
        "sample_without_replacement: need 0 <= k <= n");
  }
  // Floyd's algorithm: k iterations, no O(n) scratch.
  std::unordered_set<int> chosen;
  chosen.reserve(static_cast<std::size_t>(k));
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<int> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fedshare::sim
