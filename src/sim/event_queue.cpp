#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace fedshare::sim {

void EventQueue::schedule(double time, Handler handler) {
  if (!handler) {
    throw std::invalid_argument("EventQueue::schedule: null handler");
  }
  if (time < now_) {
    throw std::invalid_argument(
        "EventQueue::schedule: cannot schedule in the past");
  }
  queue_.push(Entry{time, next_seq_++, std::move(handler)});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the handler (events are small closures).
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.time;
  ++processed_;
  e.handler(now_);
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    run_next();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace fedshare::sim
