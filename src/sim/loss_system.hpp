// The loss-system engine shared by the Poisson simulator
// (multiplex_sim) and the trace replayer (workload).
//
// Holds the pooled location state, admission logic (an arrival needs
// `units_per_location` free units at >= threshold distinct, in-service
// locations), departure scheduling, outage windows (locations accept no
// new placements while down — the paper's reliability dimension), and
// post-warmup statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "sim/event_queue.hpp"
#include "sim/multiplex_sim.hpp"

namespace fedshare::sim {

/// Stateful loss system. Drive it by calling offer() with
/// non-decreasing timestamps; departures and outage boundaries are
/// processed internally in time order.
class LossSystem {
 public:
  /// `classes` supplies per-class request shapes; `warmup` is the time
  /// before which statistics are not recorded.
  LossSystem(const alloc::LocationPool& pool,
             std::vector<alloc::RequestClass> classes, double warmup,
             LocationPolicy policy);

  /// Registers an outage window; must be called before any offer() at or
  /// past its start time.
  void add_outage(const Outage& outage);

  /// Offers one arrival of `class_index` at absolute time `now` (>= the
  /// previous offer) holding for `holding_time`. Returns true if
  /// admitted.
  bool offer(std::size_t class_index, double now, double holding_time);

  /// Advances internal time to `t` (processes departures/outages) and
  /// closes the busy-time integral; call once at the horizon.
  void finish(double t);

  /// Post-warmup per-class stats (valid after finish()).
  [[nodiscard]] const std::vector<ClassStats>& stats() const noexcept {
    return stats_;
  }

  /// Time-integral of busy units since warmup (valid after finish()).
  [[nodiscard]] double busy_integral() const noexcept {
    return busy_integral_;
  }

 private:
  void advance_to(double now);
  void track_busy(double now, double delta);

  std::vector<alloc::RequestClass> classes_;
  std::vector<double> free_units_;
  std::vector<bool> down_;
  double warmup_;
  LocationPolicy policy_;
  EventQueue events_;

  std::vector<ClassStats> stats_;
  double busy_integral_ = 0.0;
  double busy_now_ = 0.0;
  double last_change_;
};

}  // namespace fedshare::sim
