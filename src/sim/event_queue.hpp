// Discrete-event simulation core.
//
// A time-ordered queue of events; ties are broken by insertion order so
// runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fedshare::sim {

/// Minimal DES engine: schedule handlers at absolute times, run in order.
class EventQueue {
 public:
  using Handler = std::function<void(double now)>;

  /// Schedules `handler` at absolute `time` (>= now(); throws otherwise).
  void schedule(double time, Handler handler);

  /// Runs the earliest pending event; returns false if none remain.
  bool run_next();

  /// Runs events until the queue empties or the next event is after
  /// `t_end` (events at exactly t_end run).
  void run_until(double t_end);

  /// Current simulation time (last processed event's time; 0 initially).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t processed() const noexcept {
    return processed_;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace fedshare::sim
