// Statistical-multiplexing simulator (Sec. 2.3.1's holding-time story).
//
// Experiments of each class arrive as a Poisson process, request
// `units_per_location` units at >= `min_locations` distinct locations,
// hold them for their holding time, and release them. An arrival is
// admitted iff enough distinct locations currently have free capacity
// (loss-system semantics, no queueing — the paper's short-term fair
// allocation abstracted to admission control). Utility accrues on
// admission as u(x) = x^d.
//
// This substrate quantifies the multiplexing gain the paper argues
// drives super-additivity for small holding times (Sec. 3.2.1) — see
// bench/ablate_multiplexing.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "sim/distributions.hpp"

namespace fedshare::sim {

/// One class's traffic description.
struct TrafficClass {
  alloc::RequestClass request;  ///< threshold, units, holding time, d
  double arrival_rate = 1.0;    ///< Poisson arrivals per unit time
};

/// How many locations an admitted experiment takes.
enum class LocationPolicy {
  kThresholdOnly,  ///< exactly ceil(threshold) locations (frugal)
  kMaximal,        ///< every location with free capacity (greedy)
};

/// A planned unavailability window for one location: while down, the
/// location accepts no new placements (experiments already holding it
/// keep their units — outages model admission loss, not preemption).
struct Outage {
  std::size_t location = 0;
  double start = 0.0;
  double end = 0.0;  ///< must be > start

  /// Throws std::invalid_argument on bad ranges.
  void validate(std::size_t num_locations) const;
};

/// Simulator configuration.
struct SimConfig {
  double horizon = 1000.0;  ///< simulated time
  double warmup = 100.0;    ///< stats discarded before this time
  std::uint64_t seed = 1;
  LocationPolicy location_policy = LocationPolicy::kThresholdOnly;
  HoldingTimeModel holding_time;  ///< deterministic by default
  std::vector<Outage> outages;    ///< reliability scenario (may be empty)
};

/// Per-class simulation statistics (post-warmup).
struct ClassStats {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  double utility = 0.0;  ///< accrued sum of u(x) over admissions

  [[nodiscard]] double blocking_probability() const noexcept {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(blocked) /
                               static_cast<double>(arrivals);
  }
};

/// Whole-run results.
struct SimResult {
  std::vector<ClassStats> per_class;
  double measured_time = 0.0;     ///< horizon - warmup
  double utility_rate = 0.0;      ///< total utility / measured_time
  double mean_busy_units = 0.0;   ///< time-averaged units in use
};

/// Runs the loss-system simulation of `classes` over `pool`.
[[nodiscard]] SimResult simulate_multiplexing(
    const alloc::LocationPool& pool, const std::vector<TrafficClass>& classes,
    const SimConfig& config);

}  // namespace fedshare::sim
