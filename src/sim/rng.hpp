// Deterministic pseudo-random number generation.
//
// Everything stochastic in fedshare (Monte-Carlo Shapley aside, which
// keeps a local copy to stay dependency-free) draws from these
// generators so results are bit-reproducible across platforms — the
// standard library's distributions are not guaranteed deterministic
// across implementations, so we provide our own.
#pragma once

#include <cstdint>
#include <vector>

namespace fedshare::sim {

/// splitmix64 — used to seed and for cheap independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniform random bits.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the main generator (fast, high quality, tiny state).
class Xoshiro256 {
 public:
  /// Seeds all four words via splitmix64 (handles seed == 0 safely).
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next 64 uniform random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) by rejection; requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

 private:
  std::uint64_t s_[4];
};

/// Samples `k` distinct integers from [0, n) uniformly (Floyd's
/// algorithm), returned in ascending order. Requires 0 <= k <= n.
[[nodiscard]] std::vector<int> sample_without_replacement(Xoshiro256& rng,
                                                          int n, int k);

}  // namespace fedshare::sim
