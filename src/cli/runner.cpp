#include "cli/runner.hpp"

#include <cmath>
#include <sstream>

#include "core/game_io.hpp"
#include "core/owen.hpp"
#include "core/shapley.hpp"
#include "core/properties.hpp"
#include "core/sharing.hpp"
#include "io/table.hpp"
#include "runtime/budget.hpp"
#include "runtime/outage.hpp"
#include "runtime/resilient.hpp"
#include "structure/csg.hpp"
#include "structure/hedonic.hpp"
#include "structure/stability.hpp"
#include "verify/audit.hpp"

namespace fedshare::cli {

namespace {

// Region names per facility (empty string = none), in facility order.
std::vector<std::string> region_labels(const io::Config& config) {
  std::vector<std::string> labels;
  for (const auto* section : config.sections_named("facility")) {
    labels.push_back(section->find("region").value_or(""));
  }
  return labels;
}

// Builds the coalition structure implied by the region labels, plus the
// distinct region display names (singletons use the facility name).
struct Hierarchy {
  game::CoalitionStructure structure;
  std::vector<std::string> block_names;
};

std::optional<Hierarchy> hierarchy_from_labels(
    const std::vector<std::string>& labels,
    const std::vector<std::string>& facility_names) {
  bool any = false;
  for (const auto& l : labels) {
    if (!l.empty()) any = true;
  }
  if (!any) return std::nullopt;
  Hierarchy h;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string& label = labels[i];
    if (label.empty()) {
      h.structure.unions.push_back(
          game::Coalition::single(static_cast<int>(i)));
      h.block_names.push_back(facility_names[i]);
      continue;
    }
    bool merged = false;
    for (std::size_t b = 0; b < h.block_names.size(); ++b) {
      if (h.block_names[b] == label) {
        h.structure.unions[b] =
            h.structure.unions[b].with(static_cast<int>(i));
        merged = true;
        break;
      }
    }
    if (!merged) {
      h.structure.unions.push_back(
          game::Coalition::single(static_cast<int>(i)));
      h.block_names.push_back(label);
    }
  }
  return h;
}

// Renders the --verify audit outcome. Deterministic text: counts,
// pass/fail, and the (capped) issue list.
void print_verification(std::ostream& out, verify::VerifyLevel level,
                        const verify::AuditReport& report) {
  io::print_heading(out, "Verification");
  out << "level: " << verify::to_string(level) << "\n";
  out << "audit checks: " << report.checks << " ("
      << (report.passed ? "all passed" : "ISSUES FOUND") << ")\n";
  if (report.lp_stats_valid) {
    const auto& lp = report.lp;
    out << "lp solves: " << lp.solves << " observed, " << lp.certified
        << " certified, " << lp.unchecked << " unchecked";
    if (lp.refined > 0) {
      out << ", " << lp.refined << " repaired by refinement";
    }
    if (lp.escalated > 0) {
      out << ", " << lp.escalated << " escalated (" << lp.dense_answers
          << " answered by the dense engine)";
    }
    if (lp.failures > 0) out << ", " << lp.failures << " UNCERTIFIED";
    out << "\n";
  }
  for (const auto& issue : report.issues) {
    out << "issue: " << issue.check << ": " << issue.detail << "\n";
  }
  for (const auto& note : report.notes) {
    out << "note: " << note.check << ": " << note.detail << "\n";
  }
}

// The --structure section: the partition found by the selected engine,
// per-block values and payoffs, welfare vs the grand coalition, and
// stability verdicts. Deterministic text (both engines are).
void print_structure(std::ostream& out, structure::StructureMode mode,
                     const game::Game& g,
                     const std::vector<std::string>& names, int precision) {
  io::print_heading(out, "Coalition structure");
  game::CoalitionStructure partition;
  if (mode == structure::StructureMode::kOptimal) {
    const auto r = structure::optimal_structure(g);
    partition = r.structure;
    out << "mode: optimal (exact subset-lattice DP, " << r.splits_considered
        << " first-block candidates)\n";
  } else {
    const auto r = structure::hedonic_merge_split(g);
    partition = r.partition;
    out << "mode: hedonic (merge/split dynamics, " << r.iterations
        << " operations, "
        << (r.converged ? "converged" : "operation cap reached") << ")\n";
  }
  const double welfare = structure::structure_welfare(g, partition);
  const double grand = g.value(game::Coalition::grand(g.num_players()));
  const auto payoffs = structure::partition_payoffs(g, partition);

  io::Table table({"block", "V(S)"});
  table.set_align(0, io::Align::kLeft);
  for (const auto& block : partition.unions) {
    std::string label;
    for (const int m : block.members()) {
      if (!label.empty()) label += "+";
      label += names[static_cast<std::size_t>(m)];
    }
    table.add_row({label, io::format_double(g.value(block), precision)});
  }
  table.print(out);
  out << "structure welfare: " << io::format_double(welfare, precision)
      << " (grand coalition " << io::format_double(grand, precision) << ", "
      << (welfare > grand + 1e-12
              ? "partitioning gains " +
                    io::format_double(welfare - grand, precision)
              : "grand coalition is optimal")
      << ")\n";

  io::Table ptable({"facility", "payoff"});
  ptable.set_align(0, io::Align::kLeft);
  for (std::size_t i = 0; i < names.size(); ++i) {
    ptable.add_row({names[i], io::format_double(payoffs[i], precision)});
  }
  out << '\n';
  ptable.print(out);

  const auto stability = structure::analyze_stability(g, partition);
  out << "merge/split stable: " << (stability.merge_split_stable ? "yes" : "no")
      << "\n";
  out << "defection-proof: " << (stability.defection_proof ? "yes" : "no")
      << " (max within-block excess "
      << io::format_double(stability.max_excess, precision);
  if (!stability.defection_proof) {
    out << " by " << stability.worst_deviation.to_string();
  }
  out << ")\n";
}

}  // namespace

model::Federation federation_from_config(const io::Config& config) {
  const auto facility_sections = config.sections_named("facility");
  if (facility_sections.empty()) {
    throw io::ConfigError("config needs at least one [facility] section");
  }
  if (facility_sections.size() > 12) {
    throw io::ConfigError(
        "at most 12 facilities supported (2^n coalition values)");
  }
  std::vector<model::FacilityConfig> configs;
  for (const auto* section : facility_sections) {
    model::FacilityConfig cfg;
    cfg.name = section->find("name").value_or(
        "F" + std::to_string(configs.size() + 1));
    const double locations = section->get_double("locations");
    if (locations < 0.0 || locations != std::floor(locations)) {
      throw io::ConfigError("'locations' must be a non-negative integer",
                            section->entry_line("locations"));
    }
    cfg.num_locations = static_cast<int>(locations);
    cfg.units_per_location = section->get_double_or("units", 1.0);
    if (cfg.units_per_location < 0.0) {
      throw io::ConfigError("'units' must be >= 0",
                            section->entry_line("units"));
    }
    cfg.availability = section->get_double_or("availability", 1.0);
    if (cfg.availability <= 0.0 || cfg.availability > 1.0) {
      throw io::ConfigError("'availability' must be in (0, 1]",
                            section->entry_line("availability"));
    }
    configs.push_back(std::move(cfg));
  }

  const auto demand_sections = config.sections_named("demand");
  if (demand_sections.empty()) {
    throw io::ConfigError("config needs at least one [demand] section");
  }
  model::DemandProfile demand;
  for (const auto* section : demand_sections) {
    model::RequestClass rc;
    rc.count = section->get_double_or("count", 1.0);
    if (rc.count < 0.0) {
      throw io::ConfigError("'count' must be >= 0",
                            section->entry_line("count"));
    }
    rc.min_locations = section->get_double_or("min_locations", 0.0);
    if (rc.min_locations < 0.0) {
      throw io::ConfigError("'min_locations' must be >= 0",
                            section->entry_line("min_locations"));
    }
    rc.units_per_location = section->get_double_or("units", 1.0);
    if (rc.units_per_location <= 0.0) {
      throw io::ConfigError("'units' must be > 0",
                            section->entry_line("units"));
    }
    rc.exponent = section->get_double_or("exponent", 1.0);
    rc.holding_time = section->get_double_or("holding_time", 1.0);
    demand.classes.push_back(rc);
  }

  try {
    demand.validate();
    return model::Federation(model::LocationSpace::disjoint(configs),
                             std::move(demand));
  } catch (const std::invalid_argument& e) {
    throw io::ConfigError(e.what());
  }
}

namespace {

// The --symmetry section: detected types, multiplicities, and the orbit
// count the quotient engine evaluated instead of all 2^n coalitions.
void print_symmetry(std::ostringstream& out, const model::Federation& fed,
                    const game::PlayerPartition& partition,
                    game::SymmetryMode mode) {
  io::print_heading(out, "Symmetry");
  out << "mode: " << game::to_string(mode)
      << (partition.is_trivial() ? " (no interchangeable facilities; full "
                                   "tabulation used)"
                                 : "")
      << "\n";
  io::Table table({"type", "facilities", "multiplicity"});
  table.set_align(0, io::Align::kLeft);
  table.set_align(1, io::Align::kLeft);
  for (int t = 0; t < partition.num_types(); ++t) {
    std::string members;
    for (const int i : partition.members(t)) {
      if (!members.empty()) members += "+";
      members += fed.space().facility(i).name();
    }
    table.add_row({std::to_string(t), members,
                   std::to_string(partition.multiplicity(t))});
  }
  table.print(out);
  out << "orbits: " << partition.orbit_count() << " of "
      << (std::uint64_t{1} << fed.num_facilities())
      << " coalitions evaluated\n";
}

// --cache-stats footer: the federation memo's counters after the report
// body ran. The hit/miss split shows how much the schemes shared; the
// batched-store line is the write-combining telemetry (batch entries vs
// shard locks actually taken).
void print_cache_stats(std::ostream& out, const exec::CacheStats& s) {
  io::print_heading(out, "Value cache");
  out << "entries: " << s.entries << ", hits: " << s.hits << ", misses: "
      << s.misses << ", invalidated: " << s.invalidations << "\n";
  out << "batched stores: " << s.batched_stores << " in " << s.batch_flushes
      << " flushes taking " << s.batch_shard_locks << " shard locks\n";
}

// Quotient-nucleolus footer line (only when the orbit-row path actually
// ran, so reports without --symmetry stay byte-identical).
void print_quotient_nucleolus_stats(std::ostream& out,
                                    const game::QuotientNucleolusInfo& info) {
  if (!info.attempted) return;
  const std::uint64_t lookups = info.orbit_hits + info.orbit_misses;
  out << "quotient nucleolus: " << info.orbit_rows << " orbit rows (dense "
      << info.dense_rows << "), " << info.lps_solved << " LPs, " << info.pivots
      << " pivots, orbit cache ";
  if (lookups == 0) {
    out << "unused";
  } else {
    const double rate =
        100.0 * static_cast<double>(info.orbit_hits) /
        static_cast<double>(lookups);
    out << info.orbit_hits << "/" << lookups << " hits ("
        << io::format_double(rate, 1) << "%)";
  }
  out << "\n";
}

// Shared body of the non-resilient report; `lp_solver` picks the
// simplex engine behind the nucleolus scheme, `verify_level` the
// --verify behaviour, and `symmetry` the quotient engine (kOff keeps
// this function byte-identical to the historical report).
std::string plain_report(const io::Config& config, lp::SolverKind lp_solver,
                         verify::VerifyLevel verify_level,
                         game::SymmetryMode symmetry,
                         structure::StructureMode structure_mode,
                         bool cache_stats) {
  const model::Federation fed = federation_from_config(config);
  int precision = 4;
  const auto options = config.sections_named("options");
  if (!options.empty()) {
    precision =
        static_cast<int>(options.front()->get_double_or("precision", 4.0));
  }

  std::ostringstream out;
  const int n = fed.num_facilities();
  const auto g = fed.build_game(symmetry);

  io::print_heading(out, "Coalition values");
  io::Table values({"coalition", "V(S)"});
  values.set_align(0, io::Align::kLeft);
  for (const auto& s : game::all_coalitions(n)) {
    if (s.empty()) continue;
    std::string label;
    for (const int m : s.members()) {
      if (!label.empty()) label += "+";
      label += fed.space().facility(m).name();
    }
    values.add_row({label, io::format_double(g.value(s), precision)});
  }
  values.print(out);

  const auto props = game::analyze_properties(g, 1e-9);
  out << "\nGame properties: "
      << (props.superadditive ? "superadditive" : "not superadditive")
      << ", " << (props.convex ? "convex" : "not convex") << ", "
      << (props.monotone ? "monotone" : "not monotone") << ", "
      << (props.essential ? "essential" : "inessential") << "\n";

  // Under --symmetry the detected partition also routes the nucleolus
  // through the orbit-row quotient formulation (an all-singletons
  // partition falls back to the dense path inside compare_schemes).
  std::optional<game::PlayerPartition> partition;
  if (symmetry != game::SymmetryMode::kOff) {
    partition = fed.symmetry_partition(symmetry);
    print_symmetry(out, fed, *partition, symmetry);
  }

  io::print_heading(out, "Sharing schemes");
  std::vector<std::string> headers{"scheme"};
  for (int i = 0; i < n; ++i) {
    headers.push_back(fed.space().facility(i).name());
  }
  headers.emplace_back("in core");
  io::Table table(std::move(headers));
  table.set_align(0, io::Align::kLeft);
  lp::SimplexOptions lp_options;
  lp_options.solver = lp_solver;
  verify::VerifyOptions verify_options;
  verify_options.level = verify_level;
  game::QuotientNucleolusInfo nucleolus_info;
  auto audited = verify::audited_compare_schemes(
      g, fed.availability_weights(), fed.consumption_weights(), lp_options,
      verify_options, partition ? &*partition : nullptr, &nucleolus_info);
  const auto& outcomes = audited.outcomes;
  for (const auto& o : outcomes) {
    std::vector<std::string> row{game::to_string(o.scheme)};
    for (int i = 0; i < n; ++i) {
      row.push_back(
          io::format_double(o.shares[static_cast<std::size_t>(i)],
                            precision));
    }
    row.emplace_back(o.in_core ? "yes" : "no");
    table.add_row(std::move(row));
  }
  table.print(out);

  // Optional hierarchy section.
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back(fed.space().facility(i).name());
  }
  if (const auto hierarchy =
          hierarchy_from_labels(region_labels(config), names)) {
    io::print_heading(out, "Hierarchy (Owen value)");
    const auto owen = game::normalize_shares(
        game::owen_value(g, hierarchy->structure));
    const auto quotient = game::normalize_shares(game::shapley_exact(
        game::quotient_game(g, hierarchy->structure)));
    io::Table htable(std::vector<std::string>{"facility", "block", "Owen share"});
    htable.set_align(0, io::Align::kLeft);
    htable.set_align(1, io::Align::kLeft);
    for (int i = 0; i < n; ++i) {
      htable.add_row(
          {names[static_cast<std::size_t>(i)],
           hierarchy->block_names[hierarchy->structure.union_of(i)],
           io::format_double(owen[static_cast<std::size_t>(i)],
                             precision)});
    }
    htable.print(out);
    io::Table rtable(std::vector<std::string>{"block", "quotient Shapley share"});
    rtable.set_align(0, io::Align::kLeft);
    for (std::size_t b = 0; b < hierarchy->block_names.size(); ++b) {
      rtable.add_row({hierarchy->block_names[b],
                      io::format_double(quotient[b], precision)});
    }
    out << '\n';
    rtable.print(out);
  }

  if (structure_mode != structure::StructureMode::kOff) {
    print_structure(out, structure_mode, g, names, precision);
  }

  if (verify_level != verify::VerifyLevel::kOff) {
    print_verification(out, verify_level, audited.report);
  }
  if (cache_stats) {
    print_cache_stats(out, fed.value_cache().stats());
    print_quotient_nucleolus_stats(out, nucleolus_info);
  }
  return out.str();
}

}  // namespace

std::string run_report(const io::Config& config) {
  return plain_report(config, lp::SolverKind::kDense,
                      verify::VerifyLevel::kOff, game::SymmetryMode::kOff,
                      structure::StructureMode::kOff, false);
}

namespace {

// The resilient variant of the report body. Mirrors run_report section
// by section, but every exponential computation runs under the budget
// and degrades instead of overrunning; the no-options fast path never
// reaches this function, which is what keeps default output
// byte-identical across releases. Degraded sections are recorded in the
// returned ReportResult so the CLI can exit nonzero.
ReportResult resilient_report(const io::Config& config,
                              const ReportOptions& ropts) {
  ReportResult result;
  const model::Federation fed = federation_from_config(config);
  int precision = 4;
  const auto options = config.sections_named("options");
  if (!options.empty()) {
    precision =
        static_cast<int>(options.front()->get_double_or("precision", 4.0));
  }

  std::ostringstream out;
  const int n = fed.num_facilities();
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back(fed.space().facility(i).name());
  }

  const runtime::ComputeBudget budget =
      ropts.deadline_ms.has_value()
          ? runtime::ComputeBudget::with_deadline_ms(*ropts.deadline_ms)
          : runtime::ComputeBudget::unlimited();
  const game::FunctionGame fgame(
      n, [&fed](game::Coalition c) { return fed.value(c); });
  // With --symmetry the tabulation collapses to one allocation per
  // orbit; with kOff this is exactly the historical budgeted
  // tabulation of fgame.
  const auto tab = fed.build_game_budgeted(ropts.symmetry, budget);

  io::print_heading(out, "Coalition values");
  io::Table values({"coalition", "V(S)"});
  values.set_align(0, io::Align::kLeft);
  if (tab) {
    for (const auto& s : game::all_coalitions(n)) {
      if (s.empty()) continue;
      std::string label;
      for (const int m : s.members()) {
        if (!label.empty()) label += "+";
        label += names[static_cast<std::size_t>(m)];
      }
      values.add_row({label, io::format_double(tab->value(s), precision)});
    }
    values.print(out);
  } else {
    // Polynomial floor: singletons and the grand coalition only.
    for (int i = 0; i < n; ++i) {
      values.add_row({names[static_cast<std::size_t>(i)],
                      io::format_double(fed.value(game::Coalition::single(i)),
                                        precision)});
    }
    std::string grand_label;
    for (const auto& name : names) {
      if (!grand_label.empty()) grand_label += "+";
      grand_label += name;
    }
    values.add_row({grand_label,
                    io::format_double(
                        fed.value(game::Coalition::grand(n)), precision)});
    values.print(out);
    out << "(full coalition table skipped: "
        << runtime::to_string(budget.stop_reason()) << ")\n";
    result.degraded_sections.emplace_back("coalition table");
  }

  if (tab) {
    const auto props = game::analyze_properties(*tab, 1e-9);
    out << "\nGame properties: "
        << (props.superadditive ? "superadditive" : "not superadditive")
        << ", " << (props.convex ? "convex" : "not convex") << ", "
        << (props.monotone ? "monotone" : "not monotone") << ", "
        << (props.essential ? "essential" : "inessential") << "\n";
  } else {
    out << "\nGame properties: not evaluated (coalition table unavailable "
           "under deadline)\n";
  }

  // As in plain_report, the --symmetry partition routes the nucleolus
  // through the orbit-row quotient formulation.
  std::optional<game::PlayerPartition> partition;
  if (ropts.symmetry != game::SymmetryMode::kOff) {
    partition = fed.symmetry_partition(ropts.symmetry);
    print_symmetry(out, fed, *partition, ropts.symmetry);
  }

  io::print_heading(out, "Sharing schemes");
  std::vector<std::string> headers{"scheme"};
  for (const auto& name : names) headers.push_back(name);
  headers.emplace_back("in core");
  io::Table table(std::move(headers));
  table.set_align(0, io::Align::kLeft);
  verify::VerifyOptions verify_options;
  verify_options.level = ropts.verify;
  verify::AuditReport audit;
  game::QuotientNucleolusInfo nucleolus_info;
  runtime::ResilientSchemes rs =
      ropts.verify == verify::VerifyLevel::kOff
          ? runtime::compare_schemes_resilient(
                tab ? static_cast<const game::Game&>(*tab) : fgame,
                tab ? &*tab : nullptr, fed.availability_weights(),
                fed.consumption_weights(), budget, 4096, 1, ropts.lp_solver,
                partition ? &*partition : nullptr, &nucleolus_info)
          : runtime::compare_schemes_resilient_verified(
                tab ? static_cast<const game::Game&>(*tab) : fgame,
                tab ? &*tab : nullptr, fed.availability_weights(),
                fed.consumption_weights(), verify_options, &audit, budget,
                4096, 1, ropts.lp_solver, partition ? &*partition : nullptr,
                &nucleolus_info);
  if (rs.shapley_engine == runtime::ShapleyEngine::kMonteCarlo) {
    result.degraded_sections.emplace_back("shapley (monte-carlo fallback)");
  }
  for (const auto& o : rs.outcomes) {
    std::vector<std::string> row{game::to_string(o.scheme)};
    for (int i = 0; i < n; ++i) {
      row.push_back(io::format_double(o.shares[static_cast<std::size_t>(i)],
                                      precision));
    }
    row.emplace_back(rs.core_checked ? (o.in_core ? "yes" : "no") : "n/a");
    table.add_row(std::move(row));
  }
  table.print(out);

  // Optional hierarchy section (needs the full table; Owen and the
  // quotient Shapley are exponential in the block structure).
  const auto labels = region_labels(config);
  if (const auto hierarchy = hierarchy_from_labels(labels, names)) {
    if (tab) {
      io::print_heading(out, "Hierarchy (Owen value)");
      const auto owen = game::normalize_shares(
          game::owen_value(*tab, hierarchy->structure));
      const auto quotient = game::normalize_shares(game::shapley_exact(
          game::quotient_game(*tab, hierarchy->structure)));
      io::Table htable(
          std::vector<std::string>{"facility", "block", "Owen share"});
      htable.set_align(0, io::Align::kLeft);
      htable.set_align(1, io::Align::kLeft);
      for (int i = 0; i < n; ++i) {
        htable.add_row(
            {names[static_cast<std::size_t>(i)],
             hierarchy->block_names[hierarchy->structure.union_of(i)],
             io::format_double(owen[static_cast<std::size_t>(i)],
                               precision)});
      }
      htable.print(out);
      io::Table rtable(
          std::vector<std::string>{"block", "quotient Shapley share"});
      rtable.set_align(0, io::Align::kLeft);
      for (std::size_t b = 0; b < hierarchy->block_names.size(); ++b) {
        rtable.add_row({hierarchy->block_names[b],
                        io::format_double(quotient[b], precision)});
      }
      out << '\n';
      rtable.print(out);
    } else {
      rs.notes.emplace_back(
          "hierarchy: skipped (coalition table unavailable under "
          "deadline)");
      result.degraded_sections.emplace_back("hierarchy");
    }
  }

  // Optional coalition-structure section. The engines read only the
  // tabulated values (free under the charging rule), so once the table
  // exists the section always completes; without it the section is
  // skipped and recorded as degraded rather than re-charging the budget.
  if (ropts.structure != structure::StructureMode::kOff) {
    if (tab) {
      print_structure(out, ropts.structure, *tab, names, precision);
    } else {
      rs.notes.emplace_back(
          "coalition structure: skipped (coalition table unavailable "
          "under deadline)");
      result.degraded_sections.emplace_back("coalition structure");
    }
  }

  io::print_heading(out, "Resilience");
  if (ropts.deadline_ms.has_value()) {
    out << "deadline: " << *ropts.deadline_ms << " ms\n";
  } else {
    out << "deadline: none\n";
  }
  out << "coalition table: "
      << (tab ? "complete"
              : std::string("truncated (") +
                    runtime::to_string(budget.stop_reason()) + ")")
      << "\n";
  out << "shapley engine: " << runtime::to_string(rs.shapley_engine);
  if (rs.shapley_engine == runtime::ShapleyEngine::kMonteCarlo) {
    out << " (" << rs.shapley_samples << " samples, max standard error "
        << io::format_double(rs.shapley_max_se, precision) << ")";
  }
  out << "\n";
  for (const auto& note : rs.notes) {
    out << "note: " << note << "\n";
  }

  if (ropts.verify != verify::VerifyLevel::kOff) {
    print_verification(out, ropts.verify, audit);
  }

  if (ropts.outage_scenarios > 0) {
    const runtime::OutageReport report = runtime::evaluate_outages(
        fed, ropts.outage_scenarios, ropts.outage_seed, budget);
    io::print_heading(out, "Outage distribution");
    out << "scenarios: " << report.scenarios_evaluated << "/"
        << report.scenarios_requested << " (seed " << report.seed << ")"
        << (report.complete() ? "" : " — truncated by the deadline")
        << "\n";
    if (!report.complete()) {
      result.degraded_sections.emplace_back("outage distribution");
    }
    if (report.scenarios_evaluated > 0) {
      out << "V(N): mean " << io::format_double(report.grand_value.mean,
                                                precision)
          << ", q05 " << io::format_double(report.grand_value.q05, precision)
          << ", q95 " << io::format_double(report.grand_value.q95, precision)
          << ", min " << io::format_double(report.grand_value.min, precision)
          << ", max " << io::format_double(report.grand_value.max, precision)
          << "\n\n";
      io::Table shares_table(std::vector<std::string>{
          "scheme", "facility", "mean share", "q05", "q95", "mean payoff"});
      shares_table.set_align(0, io::Align::kLeft);
      shares_table.set_align(1, io::Align::kLeft);
      for (const auto& sr : report.schemes) {
        for (int i = 0; i < n; ++i) {
          const auto fi = static_cast<std::size_t>(i);
          shares_table.add_row(
              {game::to_string(sr.scheme), names[fi],
               io::format_double(sr.shares[fi].mean, precision),
               io::format_double(sr.shares[fi].q05, precision),
               io::format_double(sr.shares[fi].q95, precision),
               io::format_double(sr.payoffs[fi].mean, precision)});
        }
      }
      shares_table.print(out);
      out << '\n';
      io::Table core_table(
          std::vector<std::string>{"scheme", "core fraction"});
      core_table.set_align(0, io::Align::kLeft);
      for (const auto& sr : report.schemes) {
        core_table.add_row({game::to_string(sr.scheme),
                            io::format_double(sr.core_fraction, precision)});
      }
      core_table.print(out);
    }
  }
  if (ropts.cache_stats) {
    print_cache_stats(out, fed.value_cache().stats());
    print_quotient_nucleolus_stats(out, nucleolus_info);
  }
  result.text = out.str();
  if (result.degraded()) {
    (void)budget.exhausted();
    result.stop = budget.stop_reason();
  }
  return result;
}

}  // namespace

std::string run_report(const io::Config& config,
                       const ReportOptions& options) {
  return run_report_result(config, options).text;
}

ReportResult run_report_result(const io::Config& config,
                               const ReportOptions& options) {
  if (!options.any()) {
    ReportResult result;
    result.text = plain_report(config, options.lp_solver, options.verify,
                               options.symmetry, options.structure,
                               options.cache_stats);
    return result;
  }
  return resilient_report(config, options);
}

std::string run_report_from_string(const std::string& text) {
  return run_report(io::Config::parse_string(text));
}

std::string dump_game_text(const io::Config& config) {
  const model::Federation fed = federation_from_config(config);
  std::ostringstream out;
  game::save_game(out, fed.build_game());
  return out.str();
}

}  // namespace fedshare::cli
