#include "cli/runner.hpp"

#include <cmath>
#include <sstream>

#include "core/game_io.hpp"
#include "core/owen.hpp"
#include "core/shapley.hpp"
#include "core/properties.hpp"
#include "core/sharing.hpp"
#include "io/table.hpp"

namespace fedshare::cli {

namespace {

// Region names per facility (empty string = none), in facility order.
std::vector<std::string> region_labels(const io::Config& config) {
  std::vector<std::string> labels;
  for (const auto* section : config.sections_named("facility")) {
    labels.push_back(section->find("region").value_or(""));
  }
  return labels;
}

// Builds the coalition structure implied by the region labels, plus the
// distinct region display names (singletons use the facility name).
struct Hierarchy {
  game::CoalitionStructure structure;
  std::vector<std::string> block_names;
};

std::optional<Hierarchy> hierarchy_from_labels(
    const std::vector<std::string>& labels,
    const std::vector<std::string>& facility_names) {
  bool any = false;
  for (const auto& l : labels) {
    if (!l.empty()) any = true;
  }
  if (!any) return std::nullopt;
  Hierarchy h;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string& label = labels[i];
    if (label.empty()) {
      h.structure.unions.push_back(
          game::Coalition::single(static_cast<int>(i)));
      h.block_names.push_back(facility_names[i]);
      continue;
    }
    bool merged = false;
    for (std::size_t b = 0; b < h.block_names.size(); ++b) {
      if (h.block_names[b] == label) {
        h.structure.unions[b] =
            h.structure.unions[b].with(static_cast<int>(i));
        merged = true;
        break;
      }
    }
    if (!merged) {
      h.structure.unions.push_back(
          game::Coalition::single(static_cast<int>(i)));
      h.block_names.push_back(label);
    }
  }
  return h;
}

}  // namespace

model::Federation federation_from_config(const io::Config& config) {
  const auto facility_sections = config.sections_named("facility");
  if (facility_sections.empty()) {
    throw io::ConfigError("config needs at least one [facility] section");
  }
  if (facility_sections.size() > 12) {
    throw io::ConfigError(
        "at most 12 facilities supported (2^n coalition values)");
  }
  std::vector<model::FacilityConfig> configs;
  for (const auto* section : facility_sections) {
    model::FacilityConfig cfg;
    cfg.name = section->find("name").value_or(
        "F" + std::to_string(configs.size() + 1));
    const double locations = section->get_double("locations");
    if (locations < 0.0 || locations != std::floor(locations)) {
      throw io::ConfigError("'locations' must be a non-negative integer",
                            section->line);
    }
    cfg.num_locations = static_cast<int>(locations);
    cfg.units_per_location = section->get_double_or("units", 1.0);
    cfg.availability = section->get_double_or("availability", 1.0);
    configs.push_back(std::move(cfg));
  }

  const auto demand_sections = config.sections_named("demand");
  if (demand_sections.empty()) {
    throw io::ConfigError("config needs at least one [demand] section");
  }
  model::DemandProfile demand;
  for (const auto* section : demand_sections) {
    model::RequestClass rc;
    rc.count = section->get_double_or("count", 1.0);
    rc.min_locations = section->get_double_or("min_locations", 0.0);
    rc.units_per_location = section->get_double_or("units", 1.0);
    rc.exponent = section->get_double_or("exponent", 1.0);
    rc.holding_time = section->get_double_or("holding_time", 1.0);
    demand.classes.push_back(rc);
  }

  try {
    demand.validate();
    return model::Federation(model::LocationSpace::disjoint(configs),
                             std::move(demand));
  } catch (const std::invalid_argument& e) {
    throw io::ConfigError(e.what());
  }
}

std::string run_report(const io::Config& config) {
  const model::Federation fed = federation_from_config(config);
  int precision = 4;
  const auto options = config.sections_named("options");
  if (!options.empty()) {
    precision =
        static_cast<int>(options.front()->get_double_or("precision", 4.0));
  }

  std::ostringstream out;
  const int n = fed.num_facilities();
  const auto g = fed.build_game();

  io::print_heading(out, "Coalition values");
  io::Table values({"coalition", "V(S)"});
  values.set_align(0, io::Align::kLeft);
  for (const auto& s : game::all_coalitions(n)) {
    if (s.empty()) continue;
    std::string label;
    for (const int m : s.members()) {
      if (!label.empty()) label += "+";
      label += fed.space().facility(m).name();
    }
    values.add_row({label, io::format_double(g.value(s), precision)});
  }
  values.print(out);

  const auto props = game::analyze_properties(g, 1e-9);
  out << "\nGame properties: "
      << (props.superadditive ? "superadditive" : "not superadditive")
      << ", " << (props.convex ? "convex" : "not convex") << ", "
      << (props.monotone ? "monotone" : "not monotone") << ", "
      << (props.essential ? "essential" : "inessential") << "\n";

  io::print_heading(out, "Sharing schemes");
  std::vector<std::string> headers{"scheme"};
  for (int i = 0; i < n; ++i) {
    headers.push_back(fed.space().facility(i).name());
  }
  headers.emplace_back("in core");
  io::Table table(std::move(headers));
  table.set_align(0, io::Align::kLeft);
  const auto outcomes = game::compare_schemes(
      g, fed.availability_weights(), fed.consumption_weights());
  for (const auto& o : outcomes) {
    std::vector<std::string> row{game::to_string(o.scheme)};
    for (int i = 0; i < n; ++i) {
      row.push_back(
          io::format_double(o.shares[static_cast<std::size_t>(i)],
                            precision));
    }
    row.emplace_back(o.in_core ? "yes" : "no");
    table.add_row(std::move(row));
  }
  table.print(out);

  // Optional hierarchy section.
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    names.push_back(fed.space().facility(i).name());
  }
  if (const auto hierarchy =
          hierarchy_from_labels(region_labels(config), names)) {
    io::print_heading(out, "Hierarchy (Owen value)");
    const auto owen = game::normalize_shares(
        game::owen_value(g, hierarchy->structure));
    const auto quotient = game::normalize_shares(game::shapley_exact(
        game::quotient_game(g, hierarchy->structure)));
    io::Table htable(std::vector<std::string>{"facility", "block", "Owen share"});
    htable.set_align(0, io::Align::kLeft);
    htable.set_align(1, io::Align::kLeft);
    for (int i = 0; i < n; ++i) {
      htable.add_row(
          {names[static_cast<std::size_t>(i)],
           hierarchy->block_names[hierarchy->structure.union_of(i)],
           io::format_double(owen[static_cast<std::size_t>(i)],
                             precision)});
    }
    htable.print(out);
    io::Table rtable(std::vector<std::string>{"block", "quotient Shapley share"});
    rtable.set_align(0, io::Align::kLeft);
    for (std::size_t b = 0; b < hierarchy->block_names.size(); ++b) {
      rtable.add_row({hierarchy->block_names[b],
                      io::format_double(quotient[b], precision)});
    }
    out << '\n';
    rtable.print(out);
  }
  return out.str();
}

std::string run_report_from_string(const std::string& text) {
  return run_report(io::Config::parse_string(text));
}

std::string dump_game_text(const io::Config& config) {
  const model::Federation fed = federation_from_config(config);
  std::ostringstream out;
  game::save_game(out, fed.build_game());
  return out.str();
}

}  // namespace fedshare::cli
