#include "cli/serve_runner.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/table.hpp"
#include "serve/event.hpp"
#include "serve/log.hpp"
#include "serve/maintenance.hpp"
#include "serve/state.hpp"

namespace fedshare::cli {

namespace {

runtime::ComputeBudget event_budget(const ServeRunOptions& options) {
  return options.deadline_ms.has_value()
             ? runtime::ComputeBudget::with_deadline_ms(*options.deadline_ms)
             : runtime::ComputeBudget::unlimited();
}

// One log line per applied event: what it was, what it invalidated, and
// how much re-solve work the incremental machinery actually did.
void print_apply(std::ostream& out, const serve::ApplyResult& result) {
  out << "epoch " << result.epoch << ": " << result.kind
      << " — invalidated " << result.invalidated << ", V recomputed "
      << result.values_recomputed;
  if (result.lp_solves > 0 || result.lp_cold_equivalent > 0) {
    out << ", LP " << result.lp_solves << " (" << result.lp_incremental
        << " warm, " << result.lp_cold << " cold; cold re-tabulation = "
        << result.lp_cold_equivalent << ")";
  }
  if (!result.complete) {
    out << " — INCOMPLETE (" << runtime::to_string(result.stop) << ")";
  }
  out << "\n";
}

void print_answer(std::ostream& out, const serve::EpochAnswer& answer,
                  int precision) {
  std::ostringstream title;
  title << "Service answer (epoch " << answer.epoch << ")";
  io::print_heading(out, title.str());
  if (answer.stale()) {
    out << "STALE: answered at epoch " << answer.epoch
        << ", service is at epoch " << answer.current_epoch << " ("
        << runtime::to_string(answer.degraded) << ")\n";
  }
  if (answer.num_facilities == 0) {
    out << "federation is empty\n";
    return;
  }
  out << "facilities:";
  for (const auto& name : answer.names) out << " " << name;
  out << "\n";
  out << "V(N): " << io::format_double(answer.grand_value, precision);
  if (answer.grand_bound.has_value()) {
    out << "  (LP relaxation bound: "
        << io::format_double(*answer.grand_bound, precision) << ")";
  }
  out << "\n\n";

  std::vector<std::string> headers{"scheme"};
  for (const auto& name : answer.names) headers.push_back(name);
  headers.emplace_back("in core");
  io::Table table(std::move(headers));
  table.set_align(0, io::Align::kLeft);
  for (const auto& o : answer.outcomes) {
    std::vector<std::string> row{game::to_string(o.scheme)};
    for (int i = 0; i < answer.num_facilities; ++i) {
      row.push_back(io::format_double(o.shares[static_cast<std::size_t>(i)],
                                      precision));
    }
    row.emplace_back(o.in_core ? "yes" : "no");
    table.add_row(std::move(row));
  }
  table.print(out);

  if (!answer.incentives.empty()) {
    out << "\n";
    io::Table inc(std::vector<std::string>{"facility", "standalone",
                                           "shapley payoff",
                                           "join surplus"});
    inc.set_align(0, io::Align::kLeft);
    const game::SchemeOutcome* shapley = nullptr;
    for (const auto& o : answer.outcomes) {
      if (o.scheme == game::Scheme::kShapley) shapley = &o;
    }
    for (int i = 0; i < answer.num_facilities; ++i) {
      const auto fi = static_cast<std::size_t>(i);
      inc.add_row(
          {answer.names[fi],
           io::format_double(answer.standalone[fi], precision),
           io::format_double(
               shapley ? shapley->payoffs[fi] : 0.0, precision),
           io::format_double(answer.incentives[fi], precision)});
    }
    inc.print(out);
  }
}

void print_stats(std::ostream& out, const serve::ServiceStats& stats) {
  io::print_heading(out, "Service stats");
  out << "events applied: " << stats.events_applied << "\n";
  out << "V(S) recomputed: " << stats.values_recomputed << "\n";
  out << "LP solves: " << stats.lp_solves << " (" << stats.lp_incremental
      << " warm, " << stats.lp_cold << " cold), " << stats.lp_pivots
      << " pivots\n";
  out << "value cache: " << stats.cache.entries << " entries, "
      << stats.cache.hits << " hits, " << stats.cache.misses << " misses, "
      << stats.cache.invalidations << " invalidated\n";
  out << "degradation history: " << stats.epochs_tripped
      << " epochs tripped, " << stats.epochs_repaired << " repaired late, "
      << stats.repairs << " repairs\n";
}

// Raises SIGKILL: no flush, no destructors, no atexit — the closest a
// test harness gets to a power cut without pulling the plug.
[[noreturn]] void crash_now() {
#ifndef _WIN32
  (void)std::raise(SIGKILL);
#endif
  std::abort();  // unreachable on POSIX; Windows fallback
}

}  // namespace

ServeRunResult run_serve(std::istream& events,
                         const ServeRunOptions& options) {
  const std::vector<serve::Event> log = serve::parse_event_log(events);

  serve::ServeOptions serve_options;
  serve_options.lp_solver = options.lp_solver;
  serve_options.track_bounds = options.track_bounds;
  serve::ServiceState state(serve_options);

  ServeRunResult result;
  std::ostringstream out;

  // Durable mode: recover from the log directory first, then apply only
  // the script suffix past the recovered epoch.
  std::unique_ptr<serve::DurableLog> durable;
  std::size_t skip = 0;
  if (options.log_dir.has_value()) {
    serve::DurableLogOptions log_options;
    log_options.checkpoint_every = options.checkpoint_every;
    log_options.retain_checkpoints = options.retain_checkpoints;
    durable = std::make_unique<serve::DurableLog>(*options.log_dir,
                                                  log_options);
    const serve::RecoveryReport recovery = durable->recover(state);
    result.recovery_fallback = recovery.used_fallback;
    result.recovery_notes = recovery.notes;
    result.recovered_checkpoint_epoch = recovery.checkpoint_epoch;
    result.recovered_events = recovery.total_events;
    result.replayed_events = recovery.replayed_events;
    skip = static_cast<std::size_t>(
        std::min<std::uint64_t>(recovery.total_events, log.size()));

    io::print_heading(out, "Durability");
    out << "log: " << *options.log_dir << " (" << recovery.total_events
        << " events durable)\n";
    if (recovery.checkpoint_epoch > 0) {
      out << "recovery: checkpoint epoch " << recovery.checkpoint_epoch
          << ", replayed " << recovery.replayed_events << " events\n";
    } else if (recovery.total_events > 0) {
      out << "recovery: full replay of " << recovery.replayed_events
          << " events\n";
    }
    for (const std::string& note : recovery.notes) {
      out << "note: " << note << "\n";
    }
    if (skip > 0) {
      out << "resuming at script event " << skip + 1 << " of "
          << log.size() << "\n";
    }
  }

  // Background repair: heals budget-tripped epochs while later events
  // stream in, so a trip degrades one query window, not the whole run.
  std::unique_ptr<serve::MaintenanceThread> maintenance;
  if (options.maintenance) {
    maintenance = std::make_unique<serve::MaintenanceThread>(state);
  }

  io::print_heading(out, "Event log");
  for (std::size_t i = skip; i < log.size(); ++i) {
    const serve::Event& event = log[i];
    try {
      const serve::ApplyResult applied =
          state.apply(event, event_budget(options));
      if (durable) durable->append(event, state);
      print_apply(out, applied);
      if (maintenance && !applied.complete) maintenance->notify();
    } catch (const serve::ServeError& e) {
      out << "invalid event (" << serve::event_kind(event)
          << "): " << e.what() << "\n";
      result.error = e.what();
      break;
    }
    if (options.crash_at_epoch.has_value() &&
        state.epoch() == *options.crash_at_epoch) {
      crash_now();
    }
  }

  if (maintenance) {
    // Drain: give the background repairs a chance to publish the final
    // heal before rendering the answer (bounded wait; a still-dirty
    // state just reports degraded as usual).
    (void)maintenance->wait_until_clean(10'000.0);
    if (durable) (void)durable->checkpoint_now(state);  // deferred due
    const serve::MaintenanceStats mstats = maintenance->stats();
    maintenance->stop();
    out << "maintenance: " << mstats.attempts << " attempts, "
        << mstats.heals << " heals, " << mstats.yields << " yields, "
        << mstats.exhaustions << " exhaustions\n";
  }

  const serve::EpochAnswer answer = state.query();
  print_answer(out, answer, options.precision);
  print_stats(out, state.stats());

  result.degraded = answer.stale();
  result.stop = answer.degraded;
  result.text = out.str();
  return result;
}

ServeRunResult run_serve_from_string(const std::string& events,
                                     const ServeRunOptions& options) {
  std::istringstream in(events);
  return run_serve(in, options);
}

}  // namespace fedshare::cli
