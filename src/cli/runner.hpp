// The fedshare CLI engine: parse a federation config, build the game,
// and render a sharing report. Kept as a library so tests can drive it
// without spawning processes; tools/fedshare_cli.cpp is the thin main.
//
// Config format (INI, see io/config.hpp):
//
//   [facility]            # one block per facility (>= 1 required)
//   name = PLC
//   locations = 300       # L_i (required)
//   units = 4             # R_i (default 1)
//   availability = 1.0    # T_i (default 1)
//
//   [demand]              # one block per request class (>= 1 required)
//   count = 10            # experiments (default 1)
//   min_locations = 450   # threshold l (default 0)
//   units = 1             # r per location (default 1)
//   exponent = 1          # utility shape d (default 1)
//
//   [options]             # optional
//   precision = 4         # digits in the report
//
// Facilities may optionally declare `region = <name>`; when any does,
// the report adds a hierarchy section (quotient Shapley per region and
// structure-consistent Owen shares per facility). Facilities without a
// region form their own singleton block.
//
// Resilience flags (tools/fedshare_cli.cpp, mapped onto ReportOptions):
//
//   --deadline-ms <ms>       compute budget for the exponential solvers;
//                            when it trips the report degrades (Monte-
//                            Carlo Shapley with standard errors, schemes
//                            needing the full coalition table skipped)
//                            instead of running long, and a Resilience
//                            section records which engines answered.
//   --outage-scenarios <k>   sample k outage scenarios from each
//                            facility's availability T_i and append a
//                            share/payoff distribution section.
//   --outage-seed <seed>     RNG seed for the outage sampler (default 1).
//   --threads <n>            exec worker threads (see exec/pool.hpp);
//                            maps to exec::set_threads() before the
//                            report runs. Results are identical at any
//                            thread count.
//   --lp-solver <dense|revised>
//                            simplex engine for the nucleolus LPs.
//                            `revised` is the LU-factorized engine with
//                            warm-started solve chains; `dense` (the
//                            default) is the historical tableau solver.
//   --verify <off|cheap|full>
//                            verification level (see verify/). `cheap`
//                            audits the game and every scheme outcome
//                            (monotonicity/superadditivity samples,
//                            efficiency, core residuals, nucleolus
//                            excess optimality) and appends a
//                            Verification section; `full` additionally
//                            runs every LP solve through the
//                            certificate-check / refine / cross-engine
//                            cascade. `off` (the default) skips all of
//                            it.
//   --symmetry <off|auto|exact>
//                            symmetry quotient (see core/symmetry.hpp).
//                            `exact` groups equal-config facilities into
//                            types and evaluates one allocation per
//                            orbit (prod (m_t + 1) instead of 2^n);
//                            `auto` verifies the grouping on sampled
//                            coalitions first; `off` (the default)
//                            keeps the per-coalition path.
//   --structure <off|optimal|hedonic>
//                            coalition-structure analysis (see
//                            src/structure). `optimal` appends a
//                            section with the welfare-maximising
//                            partition from the exact subset-lattice
//                            DP; `hedonic` reports the merge/split
//                            fixed point instead. Both include
//                            stability verdicts (D_hp and within-block
//                            defection-proofness). `off` (the default)
//                            leaves the output untouched.
//
// Without any flag the output is byte-identical to previous releases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/config.hpp"
#include "lp/simplex.hpp"
#include "model/federation.hpp"
#include "runtime/budget.hpp"
#include "structure/csg.hpp"
#include "verify/certificates.hpp"

namespace fedshare::cli {

/// Resilience knobs for run_report. Default-constructed options select
/// the original (non-degradable) code path with unchanged output.
struct ReportOptions {
  /// Compute budget for the exponential solvers (tabulation, exact
  /// Shapley, nucleolus LPs). Unset = unlimited.
  std::optional<double> deadline_ms;
  /// When > 0, append an outage-distribution section over this many
  /// sampled scenarios.
  int outage_scenarios = 0;
  /// Seed for the outage sampler.
  std::uint64_t outage_seed = 1;
  /// Simplex engine for the nucleolus LPs (--lp-solver). kDense is the
  /// historical engine; kRevised is the factorized-basis engine with
  /// warm-started chains. Both produce the same shares to within the
  /// report's printed precision.
  lp::SolverKind lp_solver = lp::SolverKind::kDense;
  /// Verification level (--verify). kOff leaves every code path — and
  /// the output — untouched; kCheap appends a Verification section with
  /// the game/outcome audits; kFull additionally certifies every LP
  /// solve through the verification cascade.
  verify::VerifyLevel verify = verify::VerifyLevel::kOff;
  /// Symmetry quotient (--symmetry, see core/symmetry.hpp). kOff (the
  /// default) keeps the historical per-mask tabulation and output;
  /// kExact groups equal-config facilities into types and evaluates one
  /// allocation per orbit; kAuto additionally verifies the grouping
  /// with the sampling oracle. Non-kOff modes append a Symmetry section
  /// but produce the same values (symmetric games only).
  game::SymmetryMode symmetry = game::SymmetryMode::kOff;
  /// Coalition-structure analysis (--structure, see structure/csg.hpp).
  /// kOff (the default) leaves the report untouched; kOptimal appends a
  /// section with the exact-DP welfare-optimal partition; kHedonic with
  /// the merge/split fixed point. Both report stability verdicts.
  structure::StructureMode structure = structure::StructureMode::kOff;
  /// --cache-stats: append a Value cache section with the federation
  /// memo's counters (entries, hits/misses, invalidations, and the
  /// write-combining telemetry). Off by default, so the report stays
  /// byte-identical; deliberately NOT part of any() — the flag only
  /// appends a footer and must not reroute onto the resilient path.
  bool cache_stats = false;

  [[nodiscard]] bool any() const noexcept {
    return deadline_ms.has_value() || outage_scenarios > 0;
  }
};

/// Builds a Federation from a parsed config. Throws io::ConfigError on
/// missing/invalid sections or values.
[[nodiscard]] model::Federation federation_from_config(
    const io::Config& config);

/// Full report: coalition values, game properties, and every sharing
/// scheme with core membership. Deterministic text output.
[[nodiscard]] std::string run_report(const io::Config& config);

/// Report with resilience options. With default options this is exactly
/// run_report(config); with a deadline the solvers degrade gracefully
/// (the report always completes) and a Resilience section is appended;
/// with outage scenarios an outage-distribution section is appended.
[[nodiscard]] std::string run_report(const io::Config& config,
                                     const ReportOptions& options);

/// A report plus degradation telemetry, so callers (the CLI) can turn
/// "some section degraded under the budget" into a nonzero exit code
/// and a stderr note instead of silently printing a reduced report.
struct ReportResult {
  std::string text;
  /// Why the budget tripped (kNone when nothing degraded).
  runtime::StopReason stop = runtime::StopReason::kNone;
  /// Human-readable names of the degraded sections, report order
  /// (e.g. "coalition table", "shapley (monte-carlo fallback)").
  std::vector<std::string> degraded_sections;
  [[nodiscard]] bool degraded() const noexcept {
    return !degraded_sections.empty();
  }
};

/// run_report with telemetry; `text` is byte-identical to
/// run_report(config, options).
[[nodiscard]] ReportResult run_report_result(const io::Config& config,
                                             const ReportOptions& options);

/// Convenience: parse `text` and report; rethrows io::ConfigError.
[[nodiscard]] std::string run_report_from_string(const std::string& text);

/// The federation's characteristic function serialized in the
/// fedshare-game v1 format (see core/game_io.hpp), for `--dump-game`.
[[nodiscard]] std::string dump_game_text(const io::Config& config);

}  // namespace fedshare::cli
