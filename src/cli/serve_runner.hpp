// The fedshare CLI's daemon mode (--serve): feed a scripted event file
// through serve::ServiceState and render each epoch's outcome plus the
// final federation answer. Kept as a library so tests (and the golden
// harness) can drive it without spawning processes.
//
// The event file format is serve/event.hpp's log format — one event per
// line, '#' comments. Without a deadline the run is fully deterministic
// (replaying the same file prints the same bytes), which is what the
// golden snapshot of configs/serve_demo.events pins down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.hpp"
#include "runtime/budget.hpp"

namespace fedshare::cli {

/// Knobs for run_serve (the --serve flag family).
struct ServeRunOptions {
  /// Per-event compute budget. When an event's re-solve trips, the
  /// service keeps the previous epoch's answer published
  /// (stale-but-bounded) and the run is reported degraded. Unset =
  /// unlimited, fully deterministic output.
  std::optional<double> deadline_ms;
  /// Simplex engine for the nucleolus LPs in each epoch's answer.
  lp::SolverKind lp_solver = lp::SolverKind::kRevised;
  /// Maintain the LP-relaxation bound table (grand-coalition bound and
  /// incremental dual-simplex re-solves).
  bool track_bounds = true;
  /// Digits in the rendered report.
  int precision = 4;

  /// Durable-log directory (--log-dir). When set, the run first
  /// recovers from the directory (newest valid checkpoint + log-suffix
  /// replay, with torn-tail/corrupt-checkpoint fallbacks), then skips
  /// the already-durable prefix of the script and appends only the new
  /// suffix — so crash + rerun of the same command resumes exactly
  /// where the crash left off.
  std::optional<std::string> log_dir;
  /// Checkpoint every N durable epochs (--checkpoint-every; 0 = never;
  /// needs log_dir). Deferred while the state is budget-dirty.
  std::uint64_t checkpoint_every = 0;
  /// Keep the newest K checkpoints (--retain-checkpoints).
  int retain_checkpoints = 2;
  /// Run a serve::MaintenanceThread for the duration of the run
  /// (--maintenance): budget-tripped epochs heal in the background with
  /// backoff + budget escalation instead of waiting for a later event.
  bool maintenance = false;
  /// Crash injection (--crash-at-epoch, needs log_dir): after epoch k
  /// is applied and durable, the process raises SIGKILL — no flush, no
  /// destructors — so the chaos harness can exercise real recovery.
  std::optional<std::uint64_t> crash_at_epoch;
};

/// Outcome of a serve run.
struct ServeRunResult {
  std::string text;  ///< the rendered report (always complete)
  /// True when the final published answer is stale (a budget trip left
  /// newer epochs unsolved); maps to CLI exit code 3.
  bool degraded = false;
  /// Why, when degraded.
  runtime::StopReason stop = runtime::StopReason::kNone;
  /// Set when an event was invalid against the roster (duplicate join,
  /// unknown facility, ...): the run stops at that event. Maps to CLI
  /// exit code 1.
  std::optional<std::string> error;

  /// True when recovery dropped a torn log tail or skipped a corrupt
  /// checkpoint (the answer is exact for the surviving history); maps
  /// to CLI exit code 4 with the notes on stderr.
  bool recovery_fallback = false;
  std::vector<std::string> recovery_notes;
  std::uint64_t recovered_checkpoint_epoch = 0;  ///< 0 = full replay
  std::uint64_t recovered_events = 0;   ///< durable events at startup
  std::uint64_t replayed_events = 0;    ///< suffix replayed at startup
};

/// Parses the event log on `events` and applies it event by event.
/// Throws serve::ServeError only for *malformed* lines (parse errors);
/// semantically invalid events are reported via ServeRunResult::error.
[[nodiscard]] ServeRunResult run_serve(std::istream& events,
                                       const ServeRunOptions& options = {});

/// Convenience: run_serve on a string.
[[nodiscard]] ServeRunResult run_serve_from_string(
    const std::string& events, const ServeRunOptions& options = {});

}  // namespace fedshare::cli
