// The fedshare CLI's daemon mode (--serve): feed a scripted event file
// through serve::ServiceState and render each epoch's outcome plus the
// final federation answer. Kept as a library so tests (and the golden
// harness) can drive it without spawning processes.
//
// The event file format is serve/event.hpp's log format — one event per
// line, '#' comments. Without a deadline the run is fully deterministic
// (replaying the same file prints the same bytes), which is what the
// golden snapshot of configs/serve_demo.events pins down.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "lp/simplex.hpp"
#include "runtime/budget.hpp"

namespace fedshare::cli {

/// Knobs for run_serve (the --serve flag family).
struct ServeRunOptions {
  /// Per-event compute budget. When an event's re-solve trips, the
  /// service keeps the previous epoch's answer published
  /// (stale-but-bounded) and the run is reported degraded. Unset =
  /// unlimited, fully deterministic output.
  std::optional<double> deadline_ms;
  /// Simplex engine for the nucleolus LPs in each epoch's answer.
  lp::SolverKind lp_solver = lp::SolverKind::kRevised;
  /// Maintain the LP-relaxation bound table (grand-coalition bound and
  /// incremental dual-simplex re-solves).
  bool track_bounds = true;
  /// Digits in the rendered report.
  int precision = 4;
};

/// Outcome of a serve run.
struct ServeRunResult {
  std::string text;  ///< the rendered report (always complete)
  /// True when the final published answer is stale (a budget trip left
  /// newer epochs unsolved); maps to CLI exit code 3.
  bool degraded = false;
  /// Why, when degraded.
  runtime::StopReason stop = runtime::StopReason::kNone;
  /// Set when an event was invalid against the roster (duplicate join,
  /// unknown facility, ...): the run stops at that event. Maps to CLI
  /// exit code 1.
  std::optional<std::string> error;
};

/// Parses the event log on `events` and applies it event by event.
/// Throws serve::ServeError only for *malformed* lines (parse errors);
/// semantically invalid events are reported via ServeRunResult::error.
[[nodiscard]] ServeRunResult run_serve(std::istream& events,
                                       const ServeRunOptions& options = {});

/// Convenience: run_serve on a string.
[[nodiscard]] ServeRunResult run_serve_from_string(
    const std::string& events, const ServeRunOptions& options = {});

}  // namespace fedshare::cli
