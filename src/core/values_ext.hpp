// Additional one-point solution concepts beyond the paper's lineup:
// the tau-value (Tijs) and the solidarity value (Nowak & Radzik).
// Both are cheap to compute exactly and make useful foils in the
// sharing-scheme comparisons: tau interpolates between every player's
// "minimal right" and "utopia payoff"; solidarity replaces a player's
// own marginal contribution with the coalition's average one, softening
// the diversity premium the Shapley value awards.
#pragma once

#include <optional>
#include <vector>

#include "core/game.hpp"

namespace fedshare::game {

/// Components of the tau-value computation.
struct TauValueResult {
  std::vector<double> utopia;        ///< M_i = V(N) - V(N \ {i})
  std::vector<double> minimal_right; ///< m_i (best guaranteed remainder)
  std::vector<double> tau;           ///< the tau-value itself
  double lambda = 0.0;               ///< interpolation coefficient
};

/// Computes the tau-value. Returns nullopt when the game is not
/// quasi-balanced (m <= M componentwise and sum(m) <= V(N) <= sum(M)
/// fail), in which case tau is undefined. Requires 1 <= n <= 20.
[[nodiscard]] std::optional<TauValueResult> tau_value(const Game& game);

/// The solidarity value: like Shapley, but a coalition S credits each
/// member with the *average* marginal contribution
/// A(S) = (1/|S|) * sum_{j in S} (V(S) - V(S \ {j})). Efficient by
/// construction. Requires 1 <= n <= 20.
[[nodiscard]] std::vector<double> solidarity_value(const Game& game);

}  // namespace fedshare::game
