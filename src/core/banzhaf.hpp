// Banzhaf power index — an alternative marginal-contribution valuation.
//
// Not used by the paper's headline results, but included in the sharing-
// scheme comparison suite: it weighs all coalitions equally instead of
// averaging over orderings, so it highlights how sensitive "importance"
// is to the averaging convention.
#pragma once

#include <vector>

#include "core/game.hpp"

namespace fedshare::game {

/// Raw Banzhaf values: beta_i = 2^-(n-1) * sum_{S not containing i}
/// (V(S+i) - V(S)). Requires n in [1, 24].
[[nodiscard]] std::vector<double> banzhaf_raw(const Game& game);

/// Normalised Banzhaf index (raw values rescaled to sum to 1; equal shares
/// if the raw values sum to ~0).
[[nodiscard]] std::vector<double> banzhaf_index(const Game& game);

}  // namespace fedshare::game
