#include "core/lattice.hpp"

#include <cmath>
#include <stdexcept>

#include "core/lattice_simd.hpp"
#include "exec/pool.hpp"

namespace fedshare::game {

namespace {

// Slot pairs per parallel chunk in a transform bit pass. Large chunks:
// the per-pair body is two loads and one add, so the chunk must
// amortise the scheduling overhead.
constexpr std::uint64_t kTransformChunk = 1u << 14;

void check_table(const std::vector<double>& values, int num_players) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument("lattice: n must be in [0, 24]");
  }
  if (values.size() != (std::size_t{1} << num_players)) {
    throw std::invalid_argument("lattice: need exactly 2^n values");
  }
}

// The lo slot of pair `p` in the pass for `bit`: the 2^(n-1) masks with
// that bit clear, in ascending mask order (insert a zero bit at
// position `bit`).
inline std::uint64_t lo_of_pair(std::uint64_t p, int bit) noexcept {
  const std::uint64_t low = p & ((std::uint64_t{1} << bit) - 1);
  return ((p >> bit) << (bit + 1)) | low;
}

// The unbudgeted transform passes route through simd::add_pass /
// simd::sub_pass (runtime AVX2 dispatch, scalar fallback); the budgeted
// variant below keeps the scalar body — its per-chunk charge accounting
// already dominates, and scalar-vs-SIMD bit-equality is guaranteed by
// construction (see lattice_simd.hpp), so one reference body stays here.
template <typename Op>
bool transform_budgeted(std::vector<double>& values, int num_players,
                        const runtime::ComputeBudget& budget, const Op& op) {
  check_table(values, num_players);
  if (num_players == 0) return true;
  const std::uint64_t half = std::uint64_t{1} << (num_players - 1);
  for (int bit = 0; bit < num_players; ++bit) {
    const std::uint64_t step = std::uint64_t{1} << bit;
    const bool ok = exec::parallel_for_budgeted(
        0, half, kTransformChunk, budget,
        [&](const exec::ChunkRange& r, const runtime::ComputeBudget& b) {
          if (!b.charge(r.end - r.begin)) return false;
          for (std::uint64_t p = r.begin; p < r.end; ++p) {
            const std::uint64_t lo = lo_of_pair(p, bit);
            op(values[lo | step], values[lo]);
          }
          return true;
        });
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void zeta_transform(std::vector<double>& values, int num_players) {
  check_table(values, num_players);
  const std::uint64_t half =
      num_players > 0 ? std::uint64_t{1} << (num_players - 1) : 0;
  for (int bit = 0; bit < num_players; ++bit) {
    exec::parallel_for(0, half, kTransformChunk,
                       [&](const exec::ChunkRange& r) {
                         simd::add_pass(values.data(), r.begin, r.end, bit);
                         return true;
                       });
  }
}

void moebius_transform(std::vector<double>& values, int num_players) {
  check_table(values, num_players);
  const std::uint64_t half =
      num_players > 0 ? std::uint64_t{1} << (num_players - 1) : 0;
  for (int bit = 0; bit < num_players; ++bit) {
    exec::parallel_for(0, half, kTransformChunk,
                       [&](const exec::ChunkRange& r) {
                         simd::sub_pass(values.data(), r.begin, r.end, bit);
                         return true;
                       });
  }
}

bool zeta_transform_budgeted(std::vector<double>& values, int num_players,
                             const runtime::ComputeBudget& budget) {
  return transform_budgeted(values, num_players, budget,
                            [](double& hi, const double& lo) { hi += lo; });
}

bool moebius_transform_budgeted(std::vector<double>& values, int num_players,
                                const runtime::ComputeBudget& budget) {
  return transform_budgeted(values, num_players, budget,
                            [](double& hi, const double& lo) { hi -= lo; });
}

std::vector<double> shapley_subset_weights(int num_players) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument(
        "shapley_subset_weights: n must be in [0, 24]");
  }
  const int n = num_players;
  std::vector<double> log_fact(static_cast<std::size_t>(n) + 1, 0.0);
  for (int k = 2; k <= n; ++k) {
    log_fact[static_cast<std::size_t>(k)] =
        log_fact[static_cast<std::size_t>(k - 1)] + std::log(k);
  }
  std::vector<double> weight(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    weight[static_cast<std::size_t>(s)] = std::exp(
        log_fact[static_cast<std::size_t>(s)] +
        log_fact[static_cast<std::size_t>(n - s - 1)] -
        log_fact[static_cast<std::size_t>(n)]);
  }
  return weight;
}

namespace {

// Per-player marginal pass: accumulates player i's sum over the masks
// without i in ascending mask order — the scalar subset formula's exact
// accumulation sequence for phi[i]. `weight` is null for Banzhaf
// (uniform scale applied by the caller). Scalar reference; the
// unbudgeted entry points below go through simd::marginal_sum instead.
double marginal_pass(const std::vector<double>& v, int num_players, int i,
                     const std::vector<double>* weight, double scale) {
  const std::uint64_t half = std::uint64_t{1} << (num_players - 1);
  const std::uint64_t bit = std::uint64_t{1} << i;
  double acc = 0.0;
  for (std::uint64_t u = 0; u < half; ++u) {
    const std::uint64_t mask = lo_of_pair(u, i);
    const double w =
        weight != nullptr
            ? (*weight)[static_cast<std::size_t>(__builtin_popcountll(mask))]
            : scale;
    acc += w * (v[mask | bit] - v[mask]);
  }
  return acc;
}

// Pair-indexed weight table shared by every player's marginal pass:
// wvec[u] = weight[popcount(u)]. Inserting the player's zero bit into u
// never changes the popcount, so the one table serves all n passes.
std::vector<double> pair_weights(const std::vector<double>& weight, int n) {
  const std::uint64_t half = std::uint64_t{1} << (n - 1);
  std::vector<double> wvec(half);
  exec::parallel_for(0, half, kTransformChunk,
                     [&](const exec::ChunkRange& r) {
                       for (std::uint64_t u = r.begin; u < r.end; ++u) {
                         wvec[u] = weight[static_cast<std::size_t>(
                             __builtin_popcountll(u))];
                       }
                       return true;
                     });
  return wvec;
}

}  // namespace

std::vector<double> shapley_lattice(const TabularGame& tab) {
  const int n = tab.num_players();
  if (n == 0) return {};
  const std::vector<double>& v = tab.values();
  const std::vector<double> weight = shapley_subset_weights(n);
  const std::vector<double> wvec = pair_weights(weight, n);
  std::vector<double> phi(static_cast<std::size_t>(n), 0.0);
  exec::parallel_for(0, static_cast<std::uint64_t>(n), 1,
                     [&](const exec::ChunkRange& r) {
                       for (std::uint64_t i = r.begin; i < r.end; ++i) {
                         phi[i] = simd::marginal_sum(
                             v.data(), n, static_cast<int>(i), wvec.data(),
                             0.0);
                       }
                       return true;
                     });
  return phi;
}

std::optional<std::vector<double>> shapley_lattice_budgeted(
    const TabularGame& tab, const runtime::ComputeBudget& budget) {
  const int n = tab.num_players();
  if (n == 0) return std::vector<double>{};
  const std::vector<double>& v = tab.values();
  const std::vector<double> weight = shapley_subset_weights(n);
  const std::uint64_t half = std::uint64_t{1} << (n - 1);
  std::vector<double> phi(static_cast<std::size_t>(n), 0.0);
  const bool ok = exec::parallel_for_budgeted(
      0, static_cast<std::uint64_t>(n), 1, budget,
      [&](const exec::ChunkRange& r, const runtime::ComputeBudget& b) {
        for (std::uint64_t i = r.begin; i < r.end; ++i) {
          if (!b.charge(half)) return false;
          phi[i] = marginal_pass(v, n, static_cast<int>(i), &weight, 0.0);
        }
        return true;
      });
  if (!ok) return std::nullopt;
  return phi;
}

std::vector<double> banzhaf_lattice(const TabularGame& tab) {
  const int n = tab.num_players();
  if (n < 1 || n > 24) {
    throw std::invalid_argument("banzhaf_lattice: n must be in [1, 24]");
  }
  const std::vector<double>& v = tab.values();
  const double scale = 1.0 / static_cast<double>(std::uint64_t{1} << (n - 1));
  std::vector<double> beta(static_cast<std::size_t>(n), 0.0);
  exec::parallel_for(0, static_cast<std::uint64_t>(n), 1,
                     [&](const exec::ChunkRange& r) {
                       for (std::uint64_t i = r.begin; i < r.end; ++i) {
                         beta[i] = simd::marginal_sum(
                             v.data(), n, static_cast<int>(i), nullptr,
                             scale);
                       }
                       return true;
                     });
  return beta;
}

std::vector<double> dividends_lattice(const TabularGame& tab) {
  std::vector<double> d = tab.values();
  moebius_transform(d, tab.num_players());
  return d;
}

}  // namespace fedshare::game
