// Plain-text serialization for tabular games.
//
// Computing V(S) can be expensive (allocation runs, DES campaigns);
// save_game/load_game let a characteristic function be computed once,
// stored, inspected, and shared between tools. Format:
//
//   fedshare-game v1
//   players <n>
//   <value of coalition mask 0>
//   <value of coalition mask 1>
//   ...            (2^n lines, index = coalition bitmask)
//
// Lines starting with '#' and blank lines are ignored on load.
#pragma once

#include <iosfwd>

#include "core/game.hpp"

namespace fedshare::game {

/// Writes `game` in the fedshare-game v1 format.
void save_game(std::ostream& out, const TabularGame& game);

/// Parses a fedshare-game v1 stream; throws std::runtime_error with a
/// description on malformed input.
[[nodiscard]] TabularGame load_game(std::istream& in);

}  // namespace fedshare::game
