// Value-sharing schemes (Sec. 3.2 of the paper).
//
// All schemes produce a share vector s with sum(s) = 1; the payoff of
// facility i is then s_i * V(N). The paper compares:
//   * the normalised Shapley value phi-hat (Eq. 5),
//   * availability-proportional sharing pi-hat (Eq. 6),
//   * consumption-proportional sharing rho-hat (Eq. 7),
//   * equal split, and
//   * the nucleolus.
// The model layer supplies the weight vectors for the proportional
// schemes (L_i * R_i for availability; allocated units for consumption).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "core/symmetry.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

/// Identifiers for the sharing schemes compared throughout the benches.
enum class Scheme {
  kShapley,
  kProportionalAvailability,
  kProportionalConsumption,
  kEqual,
  kNucleolus,
  kBanzhaf,
};

/// Human-readable scheme name.
[[nodiscard]] const char* to_string(Scheme scheme) noexcept;

/// Equal split: 1/n each. Requires n >= 1.
[[nodiscard]] std::vector<double> equal_shares(int num_players);

/// Proportional shares from non-negative weights: s_i = w_i / sum(w).
/// If all weights are ~0, falls back to equal shares. Negative weights
/// throw std::invalid_argument.
[[nodiscard]] std::vector<double> proportional_shares(
    const std::vector<double>& weights);

/// Normalised Shapley shares of `game` (phi-hat, Eq. 5).
[[nodiscard]] std::vector<double> shapley_shares(const Game& game);

/// Nucleolus-based shares (allocation / V(N)); falls back to equal shares
/// when V(N) is ~0. Requires n <= 10.
[[nodiscard]] std::vector<double> nucleolus_shares(const Game& game);

/// Variant threading LP solver options (engine choice, tolerance,
/// budget) into the nucleolus scheme's internal LPs.
[[nodiscard]] std::vector<double> nucleolus_shares(
    const Game& game, const lp::SimplexOptions& options);

/// One scheme's outcome in a comparison run.
struct SchemeOutcome {
  Scheme scheme;
  std::vector<double> shares;    ///< sums to 1
  std::vector<double> payoffs;   ///< shares * V(N)
  bool in_core = false;          ///< payoff vector lies in the core
};

/// Computes every scheme on `game`. `availability_weights` and
/// `consumption_weights` feed the two proportional schemes; pass empty
/// vectors to skip those schemes. Core membership of each payoff vector
/// is checked when n <= 16.
[[nodiscard]] std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights);

/// Variant threading LP solver options into the nucleolus scheme (the
/// only scheme that solves LPs). The CLI's --lp-solver flag lands here.
[[nodiscard]] std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights,
    const lp::SimplexOptions& lp_options);

/// Telemetry from the quotient-nucleolus path of a comparison run, for
/// the CLI's --cache-stats section and the benches.
struct QuotientNucleolusInfo {
  bool attempted = false;  ///< a non-trivial partition was supplied
  bool used = false;       ///< the orbit-row formulation produced the row
  std::uint64_t orbit_rows = 0;   ///< excess rows per probe LP (quotient)
  std::uint64_t dense_rows = 0;   ///< rows the dense formulation would carry
  std::uint64_t lps_solved = 0;
  std::uint64_t pivots = 0;
  std::uint64_t orbit_hits = 0;    ///< orbit-cache hits while solving
  std::uint64_t orbit_misses = 0;  ///< orbit values actually materialised
};

/// Partition-aware variant: with a non-trivial `partition` (and a game
/// that is symmetric under it — the caller's contract, see
/// verified_partition) the nucleolus runs on the orbit-row quotient
/// formulation, lifting the scheme past the dense n <= 10 ceiling; an
/// all-singletons partition (or nullptr) falls back to the dense path,
/// byte-identical to the 4-argument overload. `info`, when non-null,
/// receives the quotient-path telemetry.
[[nodiscard]] std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights,
    const lp::SimplexOptions& lp_options, const PlayerPartition* partition,
    QuotientNucleolusInfo* info = nullptr);

}  // namespace fedshare::game
