// Symmetry-quotient game engine.
//
// The paper's numerical study builds federations from a handful of
// facility *types*: many providers share identical parameters, so V(S)
// depends only on how many members of each type S contains. This module
// exploits that structure. A PlayerPartition groups interchangeable
// players into types; the OrbitIndex maps each of the 2^n coalition
// masks to its orbit — the type-count vector (c_1, ..., c_T) — of which
// there are only prod_t (m_t + 1). A QuotientGame evaluates the base
// game once per orbit (on a canonical representative mask) and expands
// orbit values back to the full lattice, to per-player Shapley values
// (symmetric players provably receive equal Shapley payoffs), and to
// raw Banzhaf values, with multiplicity weights.
//
// Detection is layered: model::Federation proposes a candidate
// partition from exact facility-parameter equality, and the generic
// Game-level oracle here (verify_symmetry / verified_partition) checks
// candidate symmetries on sampled coalitions — swapping two same-type
// players across a random coalition boundary must leave V unchanged —
// splitting any type that fails. --symmetry=exact trusts the candidate;
// --symmetry=auto runs the oracle first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "exec/value_cache.hpp"
#include "runtime/budget.hpp"

namespace fedshare::game {

/// How coalition symmetry is exploited by the model/CLI layers.
enum class SymmetryMode {
  kOff,    ///< never quotient; byte-identical to the historical paths
  kAuto,   ///< detect types, then verify them with the sampling oracle
  kExact,  ///< trust the detected types without oracle verification
};

/// Parses "off" / "auto" / "exact"; nullopt otherwise.
[[nodiscard]] std::optional<SymmetryMode> symmetry_mode_from_string(
    const std::string& text);
[[nodiscard]] const char* to_string(SymmetryMode mode);

/// A partition of players 0..n-1 into interchangeable types. Types are
/// numbered 0..T-1 in order of their first member.
class PlayerPartition {
 public:
  /// Every player its own type (the "no symmetry" partition).
  static PlayerPartition identity(int num_players);

  /// From a type label per player; labels are renumbered to
  /// first-occurrence order, so any labelling scheme works.
  static PlayerPartition from_type_of(const std::vector<int>& type_of);

  [[nodiscard]] int num_players() const noexcept {
    return static_cast<int>(type_of_.size());
  }
  [[nodiscard]] int num_types() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] int type_of(int player) const {
    return type_of_[static_cast<std::size_t>(player)];
  }
  /// Members of type t, ascending.
  [[nodiscard]] const std::vector<int>& members(int type) const {
    return members_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] int multiplicity(int type) const {
    return static_cast<int>(members_[static_cast<std::size_t>(type)].size());
  }
  /// True when every type is a singleton (quotienting saves nothing).
  [[nodiscard]] bool is_trivial() const noexcept {
    return num_types() == num_players();
  }
  /// prod_t (m_t + 1): the number of orbits, i.e. distinct V values.
  [[nodiscard]] std::uint64_t orbit_count() const noexcept;

 private:
  std::vector<int> type_of_;
  std::vector<std::vector<int>> members_;
};

/// Bijection between orbit ids and type-count vectors, plus the mask
/// canonicalisation. Orbit ids are mixed-radix: id = sum_t c_t *
/// stride_t with stride_t = prod_{u<t} (m_u + 1), so the empty orbit is
/// 0 and the grand orbit is orbit_count() - 1.
class OrbitIndex {
 public:
  explicit OrbitIndex(PlayerPartition partition);

  [[nodiscard]] const PlayerPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] int num_players() const noexcept {
    return partition_.num_players();
  }
  [[nodiscard]] int num_types() const noexcept {
    return partition_.num_types();
  }
  [[nodiscard]] std::uint64_t orbit_count() const noexcept {
    return orbit_count_;
  }

  /// The orbit id of a coalition mask (per-type member popcounts).
  [[nodiscard]] std::uint64_t orbit_of(std::uint64_t mask) const noexcept;

  /// Type counts (c_1, ..., c_T) of an orbit.
  [[nodiscard]] std::vector<int> counts(std::uint64_t orbit) const;

  /// counts() into a caller-owned buffer (resized to num_types()); the
  /// allocation-free flavour the orbit-row LP builders iterate with.
  void counts_into(std::uint64_t orbit, std::vector<int>& out) const;

  /// The grand orbit id (every type at full multiplicity).
  [[nodiscard]] std::uint64_t grand_orbit() const noexcept {
    return orbit_count_ - 1;
  }

  /// True for the orbits that carry an excess row in the quotient
  /// nucleolus LP: neither the empty orbit (id 0) nor the grand orbit.
  [[nodiscard]] bool is_proper(std::uint64_t orbit) const noexcept {
    return orbit != 0 && orbit != orbit_count_ - 1;
  }

  /// The canonical representative mask: the c_t lowest-indexed members
  /// of each type.
  [[nodiscard]] std::uint64_t representative(std::uint64_t orbit) const;

  /// Total player count |c| of an orbit (the lattice level).
  [[nodiscard]] int level(std::uint64_t orbit) const noexcept {
    return level_[static_cast<std::size_t>(orbit)];
  }

  /// Number of coalition masks in the orbit: prod_t C(m_t, c_t).
  [[nodiscard]] double orbit_size(std::uint64_t orbit) const;

  /// The orbit with one more / one fewer member of `type`, or nullopt
  /// at the boundary. These are the quotient-lattice edges used by the
  /// warm-start chains and the monotone closure.
  [[nodiscard]] std::optional<std::uint64_t> successor(std::uint64_t orbit,
                                                      int type) const;
  [[nodiscard]] std::optional<std::uint64_t> predecessor(std::uint64_t orbit,
                                                         int type) const;

  /// C(multiplicity(type), k); exact in double for n <= 24.
  [[nodiscard]] double choose(int type, int k) const;

 private:
  PlayerPartition partition_;
  std::vector<std::uint64_t> type_mask_;   // member bits per type
  std::vector<std::uint64_t> stride_;      // mixed-radix strides
  std::vector<int> level_;                 // |c| per orbit
  std::vector<std::vector<double>> binom_; // binom_[t][k] = C(m_t, k)
  std::uint64_t orbit_count_ = 1;
};

/// Sampling oracle: draws `samples` random coalitions and, for each
/// type with two or more members, swaps a random same-type pair across
/// the coalition boundary; returns false as soon as some swap moves V
/// by more than `tolerance * (1 + |V|)`. A true result is
/// probabilistic evidence, not proof.
[[nodiscard]] bool verify_symmetry(const Game& game,
                                   const PlayerPartition& partition,
                                   int samples = 64,
                                   std::uint64_t seed = 0x5eedULL,
                                   double tolerance = 1e-9);

/// Oracle-refined partition: each type of `candidate` is tested member
/// by member against its first member; members that fail any sampled
/// swap are split out as singleton types. The result is always safe to
/// quotient with (at worst the identity partition).
[[nodiscard]] PlayerPartition verified_partition(
    const Game& game, const PlayerPartition& candidate, int samples = 64,
    std::uint64_t seed = 0x5eedULL, double tolerance = 1e-9);

/// Expands a per-orbit value table to the full 2^n lattice. Parallel
/// copy; bit-identical at any thread count.
[[nodiscard]] TabularGame expand_orbit_table(
    const OrbitIndex& index, const std::vector<double>& orbit_values);

/// Exact Shapley values straight from a per-orbit table via the
/// multiplicity-weighted quotient formula
///   phi_t = sum_c C(m_t - 1, c_t) prod_{u != t} C(m_u, c_u)
///           * w(|c|) * (V(c + e_t) - V(c)),
/// one value per type, replicated to that type's members. O(T * #orbits)
/// instead of O(n * 2^n).
[[nodiscard]] std::vector<double> shapley_from_orbit_table(
    const OrbitIndex& index, const std::vector<double>& orbit_values);

/// Raw Banzhaf values from a per-orbit table (same quotient formula
/// with the uniform 2^-(n-1) weight).
[[nodiscard]] std::vector<double> banzhaf_from_orbit_table(
    const OrbitIndex& index, const std::vector<double>& orbit_values);

/// Expands a per-type vector to a per-player vector (members of a type
/// all receive that type's entry). The read-back half of the orbit-row
/// nucleolus: symmetric players provably receive equal nucleolus
/// payoffs, so the quotient LP's per-type shares ARE the allocation.
[[nodiscard]] std::vector<double> expand_type_values(
    const PlayerPartition& partition, const std::vector<double>& per_type);

/// The excess V(o) - sum_t c_t(o) * x_t of one orbit under per-type
/// shares `per_type_x`. Every mask in the orbit has exactly this excess
/// under the expanded allocation, which is the expansion-correctness
/// hook the swap-test oracle and the auditors lean on: checking one row
/// per orbit proves the property for all prod_t C(m_t, c_t) masks.
[[nodiscard]] double orbit_excess(const OrbitIndex& index,
                                  const std::vector<double>& orbit_values,
                                  const std::vector<double>& per_type_x,
                                  std::uint64_t orbit);

/// max over proper orbits of orbit_excess(): equals the full-lattice
/// max_core_violation of the expanded allocation whenever the base game
/// really is symmetric under the partition. Auditors compare the two to
/// certify a quotient nucleolus from raw full-lattice data.
[[nodiscard]] double max_orbit_excess(const OrbitIndex& index,
                                      const std::vector<double>& orbit_values,
                                      const std::vector<double>& per_type_x);

/// A game quotiented by a player partition: V is evaluated once per
/// orbit (on the canonical representative, memoized in a sharded
/// exec::ValueCache keyed by orbit id) and read back for every mask in
/// the orbit. The base game must actually be symmetric under the
/// partition for the quotient to be exact — detection/verification is
/// the caller's job (see verified_partition).
class QuotientGame final : public Game {
 public:
  /// `base` is not owned and must outlive this game.
  QuotientGame(const Game& base, PlayerPartition partition);

  [[nodiscard]] int num_players() const override;
  [[nodiscard]] double value(Coalition coalition) const override;
  /// Charging rule: one unit per distinct *orbit* materialised; re-reads
  /// anywhere in the orbit are free.
  [[nodiscard]] std::optional<double> value_budgeted(
      Coalition coalition,
      const runtime::ComputeBudget& budget) const override;

  [[nodiscard]] const OrbitIndex& orbits() const noexcept { return index_; }

  /// All orbit values, evaluated in parallel (each orbit writes its own
  /// slot; bit-identical at any thread count). Memoized.
  [[nodiscard]] const std::vector<double>& orbit_values() const;

  /// Budgeted variant: charges one unit per orbit not already cached;
  /// nullopt when the budget trips (a partial orbit table is useless).
  [[nodiscard]] std::optional<std::vector<double>> orbit_values_budgeted(
      const runtime::ComputeBudget& budget) const;

  /// Full-lattice expansion of orbit_values().
  [[nodiscard]] TabularGame expand() const;

  /// Per-player Shapley / raw Banzhaf via the quotient formulas.
  [[nodiscard]] std::vector<double> shapley() const;
  [[nodiscard]] std::vector<double> banzhaf_raw() const;

  /// Orbit-cache statistics (LPs actually solved = misses).
  [[nodiscard]] const exec::ValueCache& cache() const noexcept {
    return cache_;
  }

 private:
  const Game* base_;
  OrbitIndex index_;
  mutable exec::ValueCache cache_;
  mutable std::vector<double> orbit_values_;  // empty until materialised
};

}  // namespace fedshare::game
