// Owen value: the Shapley value for games with a coalition structure
// (a-priori unions).
//
// The paper's PlanetLab federation is explicitly hierarchical (Sec. 1.2):
// testbeds like G-Lab or EmanicsLab join through regional authorities
// (PLE), which federate at the top level with PLC and PLJ. The Owen
// value averages marginal contributions only over player orderings
// consistent with that structure — unions arrive as blocks — so it is
// the natural "two-level Shapley" for splitting federation value first
// across authorities and then inside each authority.
//
// Properties used as tests: with singleton unions (or one grand union)
// the Owen value equals the Shapley value, and each union's total Owen
// payoff equals the union's Shapley value in the quotient game.
#pragma once

#include <vector>

#include "core/coalition.hpp"
#include "core/game.hpp"

namespace fedshare::game {

/// A partition of the players 0..n-1 into non-empty unions.
struct CoalitionStructure {
  std::vector<Coalition> unions;

  /// Validates that `unions` partitions exactly the players of an
  /// n-player game; throws std::invalid_argument otherwise.
  void validate(int num_players) const;

  /// Index of the union containing `player`; throws if absent.
  [[nodiscard]] std::size_t union_of(int player) const;
};

/// Exact Owen value of every player. Requires n <= 20 and
/// 2^(#unions) * 2^(max union size) * n to stay small (the computation
/// enumerates union-subsets x within-union subsets).
[[nodiscard]] std::vector<double> owen_value(
    const Game& game, const CoalitionStructure& structure);

/// The quotient game between unions: players are union indices, and
/// V_q(H) = V(union of the unions in H). Useful for the top level of a
/// hierarchical federation.
[[nodiscard]] TabularGame quotient_game(const Game& game,
                                        const CoalitionStructure& structure);

}  // namespace fedshare::game
