// Structural properties of TU games (Sec. 3.2.1 of the paper).
//
// Superadditivity and convexity govern when the grand coalition is worth
// forming and when the core is guaranteed non-empty (convex => core
// contains the Shapley value). The checks return witnesses so tests and
// diagnostics can show *which* coalitions violate a property.
#pragma once

#include <optional>
#include <string>

#include "core/coalition.hpp"
#include "core/game.hpp"

namespace fedshare::game {

/// A violating pair of coalitions for diagnostics.
struct ViolationWitness {
  Coalition first;
  Coalition second;
  double deficit = 0.0;  ///< how far the inequality fails (positive)

  [[nodiscard]] std::string to_string() const;
};

/// Superadditivity: V(S u T) >= V(S) + V(T) for all disjoint S, T.
/// Returns a witness of the worst violation, or nullopt if superadditive.
/// Requires n <= 16 (the check enumerates all disjoint pairs, O(3^n)).
[[nodiscard]] std::optional<ViolationWitness> superadditivity_violation(
    const Game& game, double tolerance = 1e-9);

/// Convexity (supermodularity), checked via the equivalent pairwise
/// marginal condition: for all S and i != j not in S,
/// V(S+i+j) - V(S+j) >= V(S+i) - V(S). Returns the worst violation
/// witness ({S+i}, {S+j}) or nullopt if convex. Requires n <= 20.
[[nodiscard]] std::optional<ViolationWitness> convexity_violation(
    const Game& game, double tolerance = 1e-9);

/// Monotonicity: V(S) <= V(T) whenever S is a subset of T (checked via
/// single-player extensions). Returns a witness (S, S+i) or nullopt.
[[nodiscard]] std::optional<ViolationWitness> monotonicity_violation(
    const Game& game, double tolerance = 1e-9);

[[nodiscard]] bool is_superadditive(const Game& game,
                                    double tolerance = 1e-9);
[[nodiscard]] bool is_convex(const Game& game, double tolerance = 1e-9);
[[nodiscard]] bool is_monotone(const Game& game, double tolerance = 1e-9);

/// Essential: V(N) strictly exceeds the sum of singleton values (there is
/// surplus worth bargaining over).
[[nodiscard]] bool is_essential(const Game& game, double tolerance = 1e-9);

/// Summary report of all properties.
struct PropertyReport {
  bool superadditive = false;
  bool convex = false;
  bool monotone = false;
  bool essential = false;
};

[[nodiscard]] PropertyReport analyze_properties(const Game& game,
                                                double tolerance = 1e-9);

}  // namespace fedshare::game
