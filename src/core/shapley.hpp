// Shapley value computation (the paper's Eq. 4 and its normalisation,
// Eq. 5).
//
// Three engines are provided:
//  * shapley_exact       — marginal-contribution subset formula,
//                          O(2^n * n); the default for n <= 24.
//  * shapley_permutations— direct enumeration of all n! orderings,
//                          O(n! * n); cross-check for n <= 10.
//  * shapley_monte_carlo — uniform permutation sampling with standard
//                          errors; for large n (hierarchical federations).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/game.hpp"

namespace fedshare::game {

/// Exact Shapley values, phi[i] for each player, via the subset formula
/// phi_i = sum_{S not containing i} |S|!(n-|S|-1)!/n! (V(S+i) - V(S)).
/// The game is tabulated once; requires n <= 24.
[[nodiscard]] std::vector<double> shapley_exact(const Game& game);

/// Budgeted exact Shapley: charges `budget` one unit per V(S) evaluation
/// during tabulation and one per accumulated subset. Returns nullopt
/// when the budget trips (a partial subset sum is not a meaningful
/// estimate — degrade to shapley_monte_carlo* instead; see
/// runtime::resilient_shapley for the sanctioned cascade).
[[nodiscard]] std::optional<std::vector<double>> shapley_exact_budgeted(
    const Game& game, const runtime::ComputeBudget& budget);

/// Exact Shapley values by enumerating all n! player orderings and
/// averaging marginal contributions. Exponentially slower than
/// shapley_exact; kept as an independent cross-check. Requires n <= 10.
[[nodiscard]] std::vector<double> shapley_permutations(const Game& game);

/// Monte-Carlo Shapley estimate.
struct MonteCarloShapley {
  std::vector<double> phi;             ///< estimated Shapley values
  std::vector<double> standard_error;  ///< per-player standard errors
  std::uint64_t samples = 0;           ///< permutations actually drawn
  /// False when an attached ComputeBudget tripped before the requested
  /// sample count; phi/standard_error then reflect `samples` draws (at
  /// least two are always completed so the errors stay defined).
  bool complete = true;
};

/// Estimates Shapley values by sampling `samples` uniform permutations
/// (each sample evaluates V n+1 times along a random ordering).
/// Deterministic given `seed` *at any exec thread count*: samples are
/// decomposed into fixed chunks, each drawing from its own
/// exec::chunk_seed stream, and the per-chunk partials are folded in
/// ascending chunk order, so serial and parallel runs are bit-identical
/// when the budget does not trip. Requires samples >= 2. When `budget`
/// is given it is charged one unit per V evaluation; on exhaustion
/// sampling stops early and the partial estimate is returned with
/// complete == false (never fewer than two samples).
[[nodiscard]] MonteCarloShapley shapley_monte_carlo(
    const Game& game, std::uint64_t samples, std::uint64_t seed,
    const runtime::ComputeBudget* budget = nullptr);

/// Antithetic variant: permutations are drawn in (pi, reverse(pi)) pairs
/// and each pair's marginal contributions are averaged before entering
/// the estimator. For monotone games a player early in pi is late in the
/// reverse, so the pair's marginals are negatively correlated and the
/// standard error drops at equal V-evaluation cost. `samples` counts
/// permutations (must be even and >= 2). Budget and thread-count
/// determinism semantics as in shapley_monte_carlo, at pair granularity
/// (never fewer than one pair).
[[nodiscard]] MonteCarloShapley shapley_monte_carlo_antithetic(
    const Game& game, std::uint64_t samples, std::uint64_t seed,
    const runtime::ComputeBudget* budget = nullptr);

/// Normalises a value vector to shares of the total: out[i] = v[i] / sum(v).
/// For Shapley values this is the paper's phi-hat (Eq. 5), since
/// efficiency makes sum(phi) = V(N). If the total is ~0, returns equal
/// shares (the paper's "no value generated" edge: nothing to divide).
[[nodiscard]] std::vector<double> normalize_shares(
    const std::vector<double>& values);

}  // namespace fedshare::game
