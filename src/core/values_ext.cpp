#include "core/values_ext.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedshare::game {

std::optional<TauValueResult> tau_value(const Game& game) {
  const int n = game.num_players();
  if (n < 1 || n > 20) {
    throw std::invalid_argument("tau_value: n must be in [1, 20]");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  TauValueResult r;
  r.utopia.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    r.utopia[static_cast<std::size_t>(i)] =
        v[grand] - v[grand & ~(std::uint64_t{1} << i)];
  }
  // Minimal right: m_i = max_{S ni i} (V(S) - sum_{j in S\{i}} M_j).
  r.minimal_right.assign(static_cast<std::size_t>(n),
                         -std::numeric_limits<double>::infinity());
  for (std::uint64_t mask = 1; mask <= grand; ++mask) {
    double utopia_sum = 0.0;
    std::uint64_t b = mask;
    while (b != 0) {
      utopia_sum += r.utopia[static_cast<std::size_t>(__builtin_ctzll(b))];
      b &= b - 1;
    }
    b = mask;
    while (b != 0) {
      const int i = __builtin_ctzll(b);
      const auto ui = static_cast<std::size_t>(i);
      const double remainder = v[mask] - (utopia_sum - r.utopia[ui]);
      r.minimal_right[ui] = std::max(r.minimal_right[ui], remainder);
      b &= b - 1;
    }
  }

  // Quasi-balancedness.
  double m_total = 0.0;
  double utopia_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (r.minimal_right[ui] > r.utopia[ui] + 1e-9) return std::nullopt;
    m_total += r.minimal_right[ui];
    utopia_total += r.utopia[ui];
  }
  const double total = v[grand];
  if (m_total > total + 1e-9 || total > utopia_total + 1e-9) {
    return std::nullopt;
  }

  // tau = m + lambda (M - m), lambda solving efficiency.
  const double gap = utopia_total - m_total;
  r.lambda = gap < 1e-12 ? 0.0 : (total - m_total) / gap;
  r.tau.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    r.tau[ui] = r.minimal_right[ui] +
                r.lambda * (r.utopia[ui] - r.minimal_right[ui]);
  }
  return r;
}

std::vector<double> solidarity_value(const Game& game) {
  const int n = game.num_players();
  if (n < 1 || n > 20) {
    throw std::invalid_argument("solidarity_value: n must be in [1, 20]");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t count = std::uint64_t{1} << n;

  // weight[s] = (n-s)! (s-1)! / n! for |S| = s (per-member coalition
  // weight), in log space.
  std::vector<double> log_fact(static_cast<std::size_t>(n) + 1, 0.0);
  for (int k = 2; k <= n; ++k) {
    log_fact[static_cast<std::size_t>(k)] =
        log_fact[static_cast<std::size_t>(k - 1)] + std::log(k);
  }
  std::vector<double> weight(static_cast<std::size_t>(n) + 1, 0.0);
  for (int s = 1; s <= n; ++s) {
    weight[static_cast<std::size_t>(s)] =
        std::exp(log_fact[static_cast<std::size_t>(n - s)] +
                 log_fact[static_cast<std::size_t>(s - 1)] -
                 log_fact[static_cast<std::size_t>(n)]);
  }

  std::vector<double> psi(static_cast<std::size_t>(n), 0.0);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    const int s = __builtin_popcountll(mask);
    // Average marginal contribution within S.
    double avg = 0.0;
    std::uint64_t b = mask;
    while (b != 0) {
      const int j = __builtin_ctzll(b);
      avg += v[mask] - v[mask & ~(std::uint64_t{1} << j)];
      b &= b - 1;
    }
    avg /= static_cast<double>(s);
    const double w = weight[static_cast<std::size_t>(s)] * avg;
    b = mask;
    while (b != 0) {
      psi[static_cast<std::size_t>(__builtin_ctzll(b))] += w;
      b &= b - 1;
    }
  }
  return psi;
}

}  // namespace fedshare::game
