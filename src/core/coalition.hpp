// Coalition: an immutable set of players encoded as a 64-bit mask.
//
// Players are indexed 0..n-1 with n <= Coalition::kMaxPlayers. All
// coalitional-game algorithms in fedshare::game operate on this type.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedshare::game {

/// A set of players (value type, cheap to copy).
class Coalition {
 public:
  /// Maximum supported number of players.
  static constexpr int kMaxPlayers = 64;

  /// The empty coalition.
  constexpr Coalition() noexcept = default;

  /// The grand coalition {0, ..., num_players-1}.
  static Coalition grand(int num_players);

  /// The singleton coalition {player}.
  static Coalition single(int player);

  /// A coalition from an explicit member list, e.g. Coalition::of({0, 2}).
  static Coalition of(std::initializer_list<int> players);

  /// A coalition directly from a bitmask.
  static constexpr Coalition from_bits(std::uint64_t bits) noexcept {
    Coalition c;
    c.bits_ = bits;
    return c;
  }

  /// Whether `player` is a member. Throws std::out_of_range on bad index.
  [[nodiscard]] bool contains(int player) const;

  /// This coalition with `player` added / removed (no-op if already so).
  [[nodiscard]] Coalition with(int player) const;
  [[nodiscard]] Coalition without(int player) const;

  /// Number of members.
  [[nodiscard]] int size() const noexcept {
    return __builtin_popcountll(bits_);
  }

  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }

  /// Set relations and operations.
  [[nodiscard]] bool is_subset_of(Coalition other) const noexcept {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] Coalition united(Coalition other) const noexcept {
    return from_bits(bits_ | other.bits_);
  }
  [[nodiscard]] Coalition intersected(Coalition other) const noexcept {
    return from_bits(bits_ & other.bits_);
  }
  [[nodiscard]] Coalition minus(Coalition other) const noexcept {
    return from_bits(bits_ & ~other.bits_);
  }

  friend bool operator==(Coalition a, Coalition b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Coalition a, Coalition b) noexcept {
    return a.bits_ != b.bits_;
  }

  /// Members in ascending order.
  [[nodiscard]] std::vector<int> members() const;

  /// Renders like "{0,2,5}" ("{}" when empty).
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t bits_ = 0;
};

/// All 2^n coalitions over n players, in mask order (empty first, grand
/// last). Throws std::invalid_argument unless 0 <= n <= 24 (guards against
/// accidental exponential blowups; larger n should use sampling).
[[nodiscard]] std::vector<Coalition> all_coalitions(int num_players);

/// Calls `fn(subset)` for every subset of `s`, including the empty set and
/// `s` itself. Visits 2^|s| subsets.
template <typename Fn>
void for_each_subset(Coalition s, Fn&& fn) {
  const std::uint64_t mask = s.bits();
  std::uint64_t sub = 0;
  while (true) {
    fn(Coalition::from_bits(sub));
    if (sub == mask) break;
    sub = (sub - mask) & mask;  // next subset in mask order
  }
}

}  // namespace fedshare::game
