#include "core/game_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fedshare::game {

namespace {

// Reads the next content line (skipping blanks and '#' comments);
// returns false at end of stream.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    line = line.substr(first);
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t')) {
      line.pop_back();
    }
    return true;
  }
  return false;
}

}  // namespace

void save_game(std::ostream& out, const TabularGame& game) {
  out << "fedshare-game v1\n";
  out << "players " << game.num_players() << "\n";
  out << "# values indexed by coalition bitmask\n";
  out.precision(17);
  for (const double v : game.values()) out << v << "\n";
}

TabularGame load_game(std::istream& in) {
  std::string line;
  if (!next_line(in, line) || line != "fedshare-game v1") {
    throw std::runtime_error("load_game: missing 'fedshare-game v1' header");
  }
  if (!next_line(in, line) || line.rfind("players ", 0) != 0) {
    throw std::runtime_error("load_game: missing 'players <n>' line");
  }
  int n = 0;
  try {
    n = std::stoi(line.substr(8));
  } catch (const std::exception&) {
    throw std::runtime_error("load_game: bad player count");
  }
  if (n < 0 || n > 24) {
    throw std::runtime_error("load_game: player count out of [0, 24]");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!next_line(in, line)) {
      throw std::runtime_error("load_game: expected " +
                               std::to_string(count) + " values, got " +
                               std::to_string(i));
    }
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(line, &used);
    } catch (const std::exception&) {
      throw std::runtime_error("load_game: bad value '" + line + "'");
    }
    if (used != line.size()) {
      throw std::runtime_error("load_game: trailing junk in '" + line + "'");
    }
    values.push_back(v);
  }
  if (next_line(in, line)) {
    throw std::runtime_error("load_game: unexpected trailing content");
  }
  try {
    return TabularGame(n, std::move(values));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("load_game: ") + e.what());
  }
}

}  // namespace fedshare::game
