#include "core/kernel.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedshare::game {

namespace {

// All pairwise surpluses in one sweep over the 2^n coalitions.
// surpluses[i][j] = s_ij(x) for i != j.
std::vector<std::vector<double>> all_surpluses(
    const TabularGame& tab, const std::vector<double>& x) {
  const int n = tab.num_players();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<std::vector<double>> s(
      nn, std::vector<double>(nn, -std::numeric_limits<double>::infinity()));
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t mask = 1; mask < count - 1; ++mask) {
    double excess = tab.values()[mask];
    std::uint64_t b = mask;
    while (b != 0) {
      excess -= x[static_cast<std::size_t>(__builtin_ctzll(b))];
      b &= b - 1;
    }
    b = mask;
    while (b != 0) {
      const auto i = static_cast<std::size_t>(__builtin_ctzll(b));
      for (std::size_t j = 0; j < nn; ++j) {
        if (((mask >> j) & 1u) == 0 && excess > s[i][j]) {
          s[i][j] = excess;
        }
      }
      b &= b - 1;
    }
  }
  return s;
}

void check_allocation(const Game& game,
                      const std::vector<double>& allocation) {
  if (allocation.size() != static_cast<std::size_t>(game.num_players())) {
    throw std::invalid_argument("kernel: allocation size must equal n");
  }
}

}  // namespace

double surplus(const Game& game, const std::vector<double>& allocation,
               int i, int j) {
  const int n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("surplus: n must be <= 20");
  }
  check_allocation(game, allocation);
  if (i < 0 || j < 0 || i >= n || j >= n || i == j) {
    throw std::invalid_argument("surplus: need distinct players in range");
  }
  double best = -std::numeric_limits<double>::infinity();
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    if (((mask >> i) & 1u) == 0 || ((mask >> j) & 1u) != 0) continue;
    double excess = game.value(Coalition::from_bits(mask));
    std::uint64_t b = mask;
    while (b != 0) {
      excess -= allocation[static_cast<std::size_t>(__builtin_ctzll(b))];
      b &= b - 1;
    }
    best = std::max(best, excess);
  }
  return best;
}

double max_surplus_imbalance(const Game& game,
                             const std::vector<double>& allocation) {
  const int n = game.num_players();
  if (n > 12) {
    throw std::invalid_argument("max_surplus_imbalance: n must be <= 12");
  }
  check_allocation(game, allocation);
  if (n < 2) return 0.0;
  const TabularGame tab = tabulate(game);
  const auto s = all_surpluses(tab, allocation);
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(j);
      worst = std::max(worst, std::abs(s[ui][uj] - s[uj][ui]));
    }
  }
  return worst;
}

PrekernelResult prekernel_point(const Game& game, std::vector<double> start,
                                int max_iterations, double tolerance) {
  const int n = game.num_players();
  if (n < 1 || n > 12) {
    throw std::invalid_argument("prekernel_point: n must be in [1, 12]");
  }
  const TabularGame tab = tabulate(game);
  PrekernelResult result;
  if (start.empty()) {
    start.assign(static_cast<std::size_t>(n),
                 tab.grand_value() / static_cast<double>(n));
  }
  check_allocation(game, start);
  result.allocation = std::move(start);
  if (n == 1) {
    result.converged = true;
    result.allocation = {tab.grand_value()};
    return result;
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    const auto s = all_surpluses(tab, result.allocation);
    double worst = 0.0;
    int wi = 0;
    int wj = 1;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double gap = std::abs(s[static_cast<std::size_t>(i)]
                                     [static_cast<std::size_t>(j)] -
                                    s[static_cast<std::size_t>(j)]
                                     [static_cast<std::size_t>(i)]);
        if (gap > worst) {
          worst = gap;
          wi = i;
          wj = j;
        }
      }
    }
    result.iterations = iter + 1;
    result.max_imbalance = worst;
    if (worst <= tolerance) {
      result.converged = true;
      return result;
    }
    // Transfer half the gap from the player with the lower surplus to
    // the one with the higher (Stearns' scheme; efficiency preserved).
    const double delta = 0.5 * (s[static_cast<std::size_t>(wi)]
                                 [static_cast<std::size_t>(wj)] -
                                s[static_cast<std::size_t>(wj)]
                                 [static_cast<std::size_t>(wi)]);
    result.allocation[static_cast<std::size_t>(wi)] += delta;
    result.allocation[static_cast<std::size_t>(wj)] -= delta;
  }
  result.max_imbalance = max_surplus_imbalance(game, result.allocation);
  result.converged = result.max_imbalance <= tolerance;
  return result;
}

}  // namespace fedshare::game
