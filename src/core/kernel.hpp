// The pre-kernel: the bargaining-equilibrium solution behind the
// nucleolus.
//
// For an allocation x, the surplus of i against j is
// s_ij(x) = max over coalitions S with i in S, j not in S of V(S) - x(S)
// — the best objection i can raise against j. A pre-kernel point
// balances every pair: s_ij = s_ji. The nucleolus always lies in the
// pre-kernel, which the tests exploit to cross-validate both solvers.
// Computed by Stearns' transfer scheme (repeatedly settle the most
// unbalanced pair).
#pragma once

#include <vector>

#include "core/game.hpp"

namespace fedshare::game {

/// Surplus s_ij(x) of player i against j (i != j). Requires n <= 20.
[[nodiscard]] double surplus(const Game& game,
                             const std::vector<double>& allocation, int i,
                             int j);

/// Largest pairwise imbalance max_{i != j} |s_ij - s_ji| at `allocation`.
[[nodiscard]] double max_surplus_imbalance(
    const Game& game, const std::vector<double>& allocation);

/// Result of the transfer scheme.
struct PrekernelResult {
  bool converged = false;
  std::vector<double> allocation;
  double max_imbalance = 0.0;  ///< at the returned allocation
  int iterations = 0;
};

/// Finds a pre-kernel point by Stearns' transfer scheme, starting from
/// `start` (defaults to the equal split of V(N) when empty). Each step
/// transfers half the surplus gap of the currently worst pair. Requires
/// 1 <= n <= 12.
[[nodiscard]] PrekernelResult prekernel_point(
    const Game& game, std::vector<double> start = {},
    int max_iterations = 20000, double tolerance = 1e-9);

}  // namespace fedshare::game
