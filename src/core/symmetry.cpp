#include "core/symmetry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/lattice.hpp"
#include "exec/pool.hpp"

namespace fedshare::game {

namespace {

// splitmix64, as in core/shapley.cpp: deterministic oracle sampling
// without dragging sim/rng.hpp into core.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }
};

// Masks per parallel chunk when expanding an orbit table to the full
// lattice (a pure copy through orbit_of).
constexpr std::uint64_t kExpandChunk = 1u << 12;

// Orbits per parallel chunk when materialising orbit values (each slot
// is an LP solve in the federation model — keep chunks small so the
// pool balances).
constexpr std::uint64_t kOrbitChunk = 4;

// Whether swapping players a and b across the boundary of `samples`
// random coalitions leaves V unchanged up to `tolerance` (relative to
// 1 + |V|).
bool pair_symmetric(const Game& game, int a, int b, int samples,
                    std::uint64_t seed, double tolerance) {
  const int n = game.num_players();
  const std::uint64_t all = n >= 64 ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << n) - 1;
  const std::uint64_t bit_a = std::uint64_t{1} << a;
  const std::uint64_t bit_b = std::uint64_t{1} << b;
  SplitMix64 rng{seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                     a * 64 + b + 1))};
  for (int s = 0; s < samples; ++s) {
    const std::uint64_t mask = rng.next() & all;
    const std::uint64_t with_a = (mask | bit_a) & ~bit_b;
    const std::uint64_t with_b = (mask | bit_b) & ~bit_a;
    const double va = game.value(Coalition::from_bits(with_a));
    const double vb = game.value(Coalition::from_bits(with_b));
    if (std::abs(va - vb) > tolerance * (1.0 + std::abs(va))) return false;
  }
  return true;
}

}  // namespace

std::optional<SymmetryMode> symmetry_mode_from_string(
    const std::string& text) {
  if (text == "off") return SymmetryMode::kOff;
  if (text == "auto") return SymmetryMode::kAuto;
  if (text == "exact") return SymmetryMode::kExact;
  return std::nullopt;
}

const char* to_string(SymmetryMode mode) {
  switch (mode) {
    case SymmetryMode::kOff:
      return "off";
    case SymmetryMode::kAuto:
      return "auto";
    case SymmetryMode::kExact:
      return "exact";
  }
  return "off";
}

PlayerPartition PlayerPartition::identity(int num_players) {
  std::vector<int> type_of(static_cast<std::size_t>(num_players));
  for (int i = 0; i < num_players; ++i) {
    type_of[static_cast<std::size_t>(i)] = i;
  }
  return from_type_of(type_of);
}

PlayerPartition PlayerPartition::from_type_of(
    const std::vector<int>& type_of) {
  if (type_of.size() > 64) {
    throw std::invalid_argument("PlayerPartition: at most 64 players");
  }
  PlayerPartition p;
  p.type_of_.resize(type_of.size());
  std::vector<int> relabel;  // original label -> dense type id
  for (std::size_t i = 0; i < type_of.size(); ++i) {
    const int label = type_of[i];
    if (label < 0) {
      throw std::invalid_argument("PlayerPartition: negative type label");
    }
    int dense = -1;
    for (std::size_t t = 0; t < relabel.size(); ++t) {
      if (relabel[t] == label) {
        dense = static_cast<int>(t);
        break;
      }
    }
    if (dense < 0) {
      dense = static_cast<int>(relabel.size());
      relabel.push_back(label);
      p.members_.emplace_back();
    }
    p.type_of_[i] = dense;
    p.members_[static_cast<std::size_t>(dense)].push_back(
        static_cast<int>(i));
  }
  return p;
}

std::uint64_t PlayerPartition::orbit_count() const noexcept {
  std::uint64_t count = 1;
  for (const auto& m : members_) count *= m.size() + 1;
  return count;
}

OrbitIndex::OrbitIndex(PlayerPartition partition)
    : partition_(std::move(partition)) {
  const int T = partition_.num_types();
  type_mask_.assign(static_cast<std::size_t>(T), 0);
  stride_.assign(static_cast<std::size_t>(T), 0);
  binom_.assign(static_cast<std::size_t>(T), {});
  std::uint64_t stride = 1;
  for (int t = 0; t < T; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    for (const int member : partition_.members(t)) {
      type_mask_[ut] |= std::uint64_t{1} << member;
    }
    stride_[ut] = stride;
    const int m = partition_.multiplicity(t);
    stride *= static_cast<std::uint64_t>(m) + 1;
    // Pascal row for C(m, k).
    binom_[ut].assign(static_cast<std::size_t>(m) + 1, 1.0);
    for (int k = 1; k < m; ++k) {
      binom_[ut][static_cast<std::size_t>(k)] =
          binom_[ut][static_cast<std::size_t>(k - 1)] *
          static_cast<double>(m - k + 1) / static_cast<double>(k);
    }
  }
  orbit_count_ = stride;
  level_.resize(static_cast<std::size_t>(orbit_count_));
  for (std::uint64_t orbit = 0; orbit < orbit_count_; ++orbit) {
    int total = 0;
    for (int t = 0; t < T; ++t) {
      const auto ut = static_cast<std::size_t>(t);
      total += static_cast<int>(
          (orbit / stride_[ut]) %
          (static_cast<std::uint64_t>(partition_.multiplicity(t)) + 1));
    }
    level_[static_cast<std::size_t>(orbit)] = total;
  }
}

std::uint64_t OrbitIndex::orbit_of(std::uint64_t mask) const noexcept {
  std::uint64_t orbit = 0;
  for (std::size_t t = 0; t < type_mask_.size(); ++t) {
    orbit += static_cast<std::uint64_t>(
                 __builtin_popcountll(mask & type_mask_[t])) *
             stride_[t];
  }
  return orbit;
}

std::vector<int> OrbitIndex::counts(std::uint64_t orbit) const {
  const int T = num_types();
  std::vector<int> c(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    c[ut] = static_cast<int>(
        (orbit / stride_[ut]) %
        (static_cast<std::uint64_t>(partition_.multiplicity(t)) + 1));
  }
  return c;
}

void OrbitIndex::counts_into(std::uint64_t orbit,
                             std::vector<int>& out) const {
  const int T = num_types();
  out.resize(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    out[ut] = static_cast<int>(
        (orbit / stride_[ut]) %
        (static_cast<std::uint64_t>(partition_.multiplicity(t)) + 1));
  }
}

std::uint64_t OrbitIndex::representative(std::uint64_t orbit) const {
  std::uint64_t mask = 0;
  const std::vector<int> c = counts(orbit);
  for (int t = 0; t < num_types(); ++t) {
    const std::vector<int>& mem = partition_.members(t);
    for (int k = 0; k < c[static_cast<std::size_t>(t)]; ++k) {
      mask |= std::uint64_t{1} << mem[static_cast<std::size_t>(k)];
    }
  }
  return mask;
}

double OrbitIndex::orbit_size(std::uint64_t orbit) const {
  double size = 1.0;
  const std::vector<int> c = counts(orbit);
  for (int t = 0; t < num_types(); ++t) {
    size *= choose(t, c[static_cast<std::size_t>(t)]);
  }
  return size;
}

std::optional<std::uint64_t> OrbitIndex::successor(std::uint64_t orbit,
                                                   int type) const {
  const auto ut = static_cast<std::size_t>(type);
  const auto radix =
      static_cast<std::uint64_t>(partition_.multiplicity(type)) + 1;
  if ((orbit / stride_[ut]) % radix + 1 >= radix) return std::nullopt;
  return orbit + stride_[ut];
}

std::optional<std::uint64_t> OrbitIndex::predecessor(std::uint64_t orbit,
                                                     int type) const {
  const auto ut = static_cast<std::size_t>(type);
  const auto radix =
      static_cast<std::uint64_t>(partition_.multiplicity(type)) + 1;
  if ((orbit / stride_[ut]) % radix == 0) return std::nullopt;
  return orbit - stride_[ut];
}

double OrbitIndex::choose(int type, int k) const {
  return binom_[static_cast<std::size_t>(type)][static_cast<std::size_t>(k)];
}

bool verify_symmetry(const Game& game, const PlayerPartition& partition,
                     int samples, std::uint64_t seed, double tolerance) {
  if (partition.num_players() != game.num_players()) {
    throw std::invalid_argument(
        "verify_symmetry: partition does not match the game");
  }
  for (int t = 0; t < partition.num_types(); ++t) {
    const std::vector<int>& mem = partition.members(t);
    for (std::size_t k = 1; k < mem.size(); ++k) {
      if (!pair_symmetric(game, mem[0], mem[k], samples, seed, tolerance)) {
        return false;
      }
    }
  }
  return true;
}

PlayerPartition verified_partition(const Game& game,
                                   const PlayerPartition& candidate,
                                   int samples, std::uint64_t seed,
                                   double tolerance) {
  if (candidate.num_players() != game.num_players()) {
    throw std::invalid_argument(
        "verified_partition: partition does not match the game");
  }
  const int n = candidate.num_players();
  std::vector<int> type_of(static_cast<std::size_t>(n));
  int next_label = 0;
  for (int t = 0; t < candidate.num_types(); ++t) {
    const std::vector<int>& mem = candidate.members(t);
    const int kept_label = next_label++;
    type_of[static_cast<std::size_t>(mem[0])] = kept_label;
    for (std::size_t k = 1; k < mem.size(); ++k) {
      // Members that survive a sampled swap against the type's anchor
      // stay; the rest become singleton types. Conservative: two
      // members that both fail against the anchor but match each other
      // are still split.
      if (pair_symmetric(game, mem[0], mem[k], samples, seed, tolerance)) {
        type_of[static_cast<std::size_t>(mem[k])] = kept_label;
      } else {
        type_of[static_cast<std::size_t>(mem[k])] = next_label++;
      }
    }
  }
  return PlayerPartition::from_type_of(type_of);
}

TabularGame expand_orbit_table(const OrbitIndex& index,
                               const std::vector<double>& orbit_values) {
  const int n = index.num_players();
  if (n > 24) {
    throw std::invalid_argument("expand_orbit_table: n must be <= 24");
  }
  if (orbit_values.size() != index.orbit_count()) {
    throw std::invalid_argument(
        "expand_orbit_table: need one value per orbit");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> v(count);
  exec::parallel_for(0, count, kExpandChunk,
                     [&](const exec::ChunkRange& r) {
                       for (std::uint64_t mask = r.begin; mask < r.end;
                            ++mask) {
                         v[mask] = orbit_values[index.orbit_of(mask)];
                       }
                       return true;
                     });
  return TabularGame(n, std::move(v));
}

namespace {

// Shared body of the quotient Shapley/Banzhaf formulas: for each type t
// and each orbit c with c_t < m_t, the coalitions S without a given
// type-t player i and with counts c number C(m_t - 1, c_t) *
// prod_{u != t} C(m_u, c_u), and each contributes
// weight(|c|) * (V(c + e_t) - V(c)) to phi_i.
std::vector<double> quotient_marginal_sum(
    const OrbitIndex& index, const std::vector<double>& orbit_values,
    const std::vector<double>* size_weight, double uniform_weight) {
  const int n = index.num_players();
  const int T = index.num_types();
  if (orbit_values.size() != index.orbit_count()) {
    throw std::invalid_argument(
        "quotient marginal sum: need one value per orbit");
  }
  // C(m_t - 1, k) rows (exact small-integer Pascal arithmetic).
  std::vector<std::vector<double>> minor(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const int m = index.partition().multiplicity(t);
    auto& row = minor[static_cast<std::size_t>(t)];
    row.assign(static_cast<std::size_t>(m), 1.0);
    for (int k = 1; k < m - 1; ++k) {
      row[static_cast<std::size_t>(k)] =
          row[static_cast<std::size_t>(k - 1)] *
          static_cast<double>(m - 1 - k + 1) / static_cast<double>(k);
    }
    if (m >= 2) row[static_cast<std::size_t>(m - 1)] = 1.0;
  }
  std::vector<double> phi_type(static_cast<std::size_t>(T), 0.0);
  for (std::uint64_t orbit = 0; orbit < index.orbit_count(); ++orbit) {
    const std::vector<int> c = index.counts(orbit);
    const int s = index.level(orbit);
    for (int t = 0; t < T; ++t) {
      const int m = index.partition().multiplicity(t);
      const int ct = c[static_cast<std::size_t>(t)];
      if (ct >= m) continue;  // no type-t player left to add
      const auto succ = *index.successor(orbit, t);
      double ways = minor[static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(ct)];
      for (int u = 0; u < T; ++u) {
        if (u == t) continue;
        ways *= index.choose(u, c[static_cast<std::size_t>(u)]);
      }
      const double w =
          size_weight != nullptr
              ? (*size_weight)[static_cast<std::size_t>(s)]
              : uniform_weight;
      phi_type[static_cast<std::size_t>(t)] +=
          ways * w * (orbit_values[succ] - orbit_values[orbit]);
    }
  }
  std::vector<double> phi(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    phi[static_cast<std::size_t>(i)] =
        phi_type[static_cast<std::size_t>(index.partition().type_of(i))];
  }
  return phi;
}

}  // namespace

std::vector<double> shapley_from_orbit_table(
    const OrbitIndex& index, const std::vector<double>& orbit_values) {
  const int n = index.num_players();
  if (n == 0) return {};
  const std::vector<double> weight = shapley_subset_weights(n);
  return quotient_marginal_sum(index, orbit_values, &weight, 0.0);
}

std::vector<double> banzhaf_from_orbit_table(
    const OrbitIndex& index, const std::vector<double>& orbit_values) {
  const int n = index.num_players();
  if (n < 1 || n > 24) {
    throw std::invalid_argument(
        "banzhaf_from_orbit_table: n must be in [1, 24]");
  }
  const double scale = 1.0 / static_cast<double>(std::uint64_t{1} << (n - 1));
  return quotient_marginal_sum(index, orbit_values, nullptr, scale);
}

std::vector<double> expand_type_values(const PlayerPartition& partition,
                                       const std::vector<double>& per_type) {
  if (per_type.size() != static_cast<std::size_t>(partition.num_types())) {
    throw std::invalid_argument(
        "expand_type_values: one entry per type required");
  }
  std::vector<double> out(static_cast<std::size_t>(partition.num_players()));
  for (int i = 0; i < partition.num_players(); ++i) {
    out[static_cast<std::size_t>(i)] =
        per_type[static_cast<std::size_t>(partition.type_of(i))];
  }
  return out;
}

double orbit_excess(const OrbitIndex& index,
                    const std::vector<double>& orbit_values,
                    const std::vector<double>& per_type_x,
                    std::uint64_t orbit) {
  std::vector<int> c = index.counts(orbit);
  double xs = 0.0;
  for (int t = 0; t < index.num_types(); ++t) {
    const auto ut = static_cast<std::size_t>(t);
    xs += static_cast<double>(c[ut]) * per_type_x[ut];
  }
  return orbit_values[static_cast<std::size_t>(orbit)] - xs;
}

double max_orbit_excess(const OrbitIndex& index,
                        const std::vector<double>& orbit_values,
                        const std::vector<double>& per_type_x) {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::uint64_t o = 1; o + 1 < index.orbit_count(); ++o) {
    worst = std::max(worst, orbit_excess(index, orbit_values, per_type_x, o));
  }
  return worst;
}

QuotientGame::QuotientGame(const Game& base, PlayerPartition partition)
    : base_(&base), index_(std::move(partition)) {
  if (index_.num_players() != base.num_players()) {
    throw std::invalid_argument(
        "QuotientGame: partition does not match the game");
  }
}

int QuotientGame::num_players() const { return base_->num_players(); }

double QuotientGame::value(Coalition coalition) const {
  const std::uint64_t orbit = index_.orbit_of(coalition.bits());
  return cache_.value_or_compute(orbit, [&] {
    return base_->value(Coalition::from_bits(index_.representative(orbit)));
  });
}

std::optional<double> QuotientGame::value_budgeted(
    Coalition coalition, const runtime::ComputeBudget& budget) const {
  const std::uint64_t orbit = index_.orbit_of(coalition.bits());
  return cache_.value_or_compute_budgeted(orbit, budget, [&] {
    return base_->value(Coalition::from_bits(index_.representative(orbit)));
  });
}

const std::vector<double>& QuotientGame::orbit_values() const {
  if (orbit_values_.empty() && index_.orbit_count() > 0) {
    std::vector<double> table(
        static_cast<std::size_t>(index_.orbit_count()));
    exec::parallel_for(
        0, index_.orbit_count(), kOrbitChunk,
        [&](const exec::ChunkRange& r) {
          for (std::uint64_t orbit = r.begin; orbit < r.end; ++orbit) {
            table[static_cast<std::size_t>(orbit)] =
                cache_.value_or_compute(orbit, [&] {
                  return base_->value(
                      Coalition::from_bits(index_.representative(orbit)));
                });
          }
          return true;
        });
    orbit_values_ = std::move(table);
  }
  return orbit_values_;
}

std::optional<std::vector<double>> QuotientGame::orbit_values_budgeted(
    const runtime::ComputeBudget& budget) const {
  if (!orbit_values_.empty()) return orbit_values_;
  std::vector<double> table(static_cast<std::size_t>(index_.orbit_count()));
  const bool ok = exec::parallel_for_budgeted(
      0, index_.orbit_count(), kOrbitChunk, budget,
      [&](const exec::ChunkRange& r, const runtime::ComputeBudget& b) {
        for (std::uint64_t orbit = r.begin; orbit < r.end; ++orbit) {
          const auto value = cache_.value_or_compute_budgeted(orbit, b, [&] {
            return base_->value(
                Coalition::from_bits(index_.representative(orbit)));
          });
          if (!value) return false;
          table[static_cast<std::size_t>(orbit)] = *value;
        }
        return true;
      });
  if (!ok) return std::nullopt;
  orbit_values_ = std::move(table);
  return orbit_values_;
}

TabularGame QuotientGame::expand() const {
  return expand_orbit_table(index_, orbit_values());
}

std::vector<double> QuotientGame::shapley() const {
  return shapley_from_orbit_table(index_, orbit_values());
}

std::vector<double> QuotientGame::banzhaf_raw() const {
  return banzhaf_from_orbit_table(index_, orbit_values());
}

}  // namespace fedshare::game
