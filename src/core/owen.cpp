#include "core/owen.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace fedshare::game {

void CoalitionStructure::validate(int num_players) const {
  if (num_players < 1 || num_players > Coalition::kMaxPlayers) {
    throw std::invalid_argument(
        "CoalitionStructure: num_players " + std::to_string(num_players) +
        " outside [1, " + std::to_string(Coalition::kMaxPlayers) + "]");
  }
  if (unions.empty()) {
    throw std::invalid_argument(
        "CoalitionStructure: no unions (a partition of " +
        std::to_string(num_players) + " players needs at least one block)");
  }
  const Coalition grand = Coalition::grand(num_players);
  Coalition seen;
  for (std::size_t k = 0; k < unions.size(); ++k) {
    const Coalition u = unions[k];
    if (u.empty()) {
      throw std::invalid_argument("CoalitionStructure: union #" +
                                  std::to_string(k) + " is empty");
    }
    if (!u.is_subset_of(grand)) {
      throw std::invalid_argument(
          "CoalitionStructure: union #" + std::to_string(k) + " = " +
          u.to_string() + " contains player " +
          std::to_string(u.minus(grand).members().front()) +
          " >= num_players (" + std::to_string(num_players) + ")");
    }
    const Coalition overlap = u.intersected(seen);
    if (!overlap.empty()) {
      throw std::invalid_argument(
          "CoalitionStructure: union #" + std::to_string(k) + " = " +
          u.to_string() + " overlaps an earlier union on " +
          overlap.to_string());
    }
    seen = seen.united(u);
  }
  if (seen != grand) {
    throw std::invalid_argument(
        "CoalitionStructure: players " + grand.minus(seen).to_string() +
        " are covered by no union");
  }
}

std::size_t CoalitionStructure::union_of(int player) const {
  for (std::size_t k = 0; k < unions.size(); ++k) {
    if (unions[k].contains(player)) return k;
  }
  throw std::invalid_argument("CoalitionStructure: player not in any union");
}

namespace {

// weights[s] = s! (n-s-1)! / n! in log space.
std::vector<double> shapley_weights(int n) {
  std::vector<double> log_fact(static_cast<std::size_t>(n) + 1, 0.0);
  for (int k = 2; k <= n; ++k) {
    log_fact[static_cast<std::size_t>(k)] =
        log_fact[static_cast<std::size_t>(k - 1)] + std::log(k);
  }
  std::vector<double> w(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    w[static_cast<std::size_t>(s)] =
        std::exp(log_fact[static_cast<std::size_t>(s)] +
                 log_fact[static_cast<std::size_t>(n - s - 1)] -
                 log_fact[static_cast<std::size_t>(n)]);
  }
  return w;
}

}  // namespace

std::vector<double> owen_value(const Game& game,
                               const CoalitionStructure& structure) {
  const int n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("owen_value: n must be <= 20");
  }
  structure.validate(n);
  const TabularGame tab = tabulate(game);
  const auto m = static_cast<int>(structure.unions.size());
  const std::vector<double> union_w = shapley_weights(m);

  std::vector<double> psi(static_cast<std::size_t>(n), 0.0);
  for (int k = 0; k < m; ++k) {
    const Coalition uk = structure.unions[static_cast<std::size_t>(k)];
    const int u = uk.size();
    const std::vector<double> inner_w = shapley_weights(u);
    const std::vector<int> members = uk.members();

    // Enumerate subsets H of the other unions.
    std::vector<Coalition> others;
    for (int j = 0; j < m; ++j) {
      if (j != k) others.push_back(structure.unions[static_cast<std::size_t>(j)]);
    }
    const std::uint64_t h_count = std::uint64_t{1} << others.size();
    for (std::uint64_t h_mask = 0; h_mask < h_count; ++h_mask) {
      Coalition q;  // players of the unions in H
      for (std::size_t j = 0; j < others.size(); ++j) {
        if ((h_mask >> j) & 1u) q = q.united(others[j]);
      }
      const double wh =
          union_w[static_cast<std::size_t>(__builtin_popcountll(h_mask))];

      // Enumerate subsets T of U_k (as masks over the member list).
      const std::uint64_t t_count = std::uint64_t{1} << u;
      for (std::uint64_t t_mask = 0; t_mask < t_count; ++t_mask) {
        // Full T: no member of U_k left to add.
        if (__builtin_popcountll(t_mask) == u) continue;
        Coalition t;
        for (int b = 0; b < u; ++b) {
          if ((t_mask >> b) & 1u) {
            t = t.with(members[static_cast<std::size_t>(b)]);
          }
        }
        const Coalition base = q.united(t);
        const double base_value = tab.value(base);
        const double wt = inner_w[static_cast<std::size_t>(
            __builtin_popcountll(t_mask))];
        for (int b = 0; b < u; ++b) {
          if ((t_mask >> b) & 1u) continue;
          const int player = members[static_cast<std::size_t>(b)];
          const double marginal =
              tab.value(base.with(player)) - base_value;
          psi[static_cast<std::size_t>(player)] += wh * wt * marginal;
        }
      }
    }
  }
  return psi;
}

TabularGame quotient_game(const Game& game,
                          const CoalitionStructure& structure) {
  const int n = game.num_players();
  structure.validate(n);
  const auto m = static_cast<int>(structure.unions.size());
  if (m > 24) {
    throw std::invalid_argument("quotient_game: too many unions");
  }
  const std::uint64_t count = std::uint64_t{1} << m;
  std::vector<double> values(count, 0.0);
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    Coalition s;
    for (int j = 0; j < m; ++j) {
      if ((mask >> j) & 1u) {
        s = s.united(structure.unions[static_cast<std::size_t>(j)]);
      }
    }
    values[mask] = game.value(s);
  }
  return TabularGame(m, std::move(values));
}

}  // namespace fedshare::game
