// Transferable-utility coalitional games.
//
// A Game maps coalitions to values (the characteristic function V).
// Concrete games either tabulate all 2^n values (TabularGame) or wrap a
// callable (FunctionGame); tabulate() converts any game to tabular form,
// which the exact solvers use to avoid recomputing V.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/coalition.hpp"
#include "runtime/budget.hpp"

namespace fedshare::game {

/// Abstract transferable-utility game. Implementations must be
/// deterministic: value(S) may be called many times for the same S.
/// Convention: value(empty) == 0.
class Game {
 public:
  virtual ~Game() = default;

  /// Number of players n (players are 0..n-1).
  [[nodiscard]] virtual int num_players() const = 0;

  /// Characteristic function V(S). `coalition` must only contain players
  /// < num_players().
  [[nodiscard]] virtual double value(Coalition coalition) const = 0;

  /// V of the grand coalition (convenience).
  [[nodiscard]] double grand_value() const {
    return value(Coalition::grand(num_players()));
  }
};

/// A game defined by an explicit table of 2^n values indexed by coalition
/// bitmask. This is the workhorse representation for exact algorithms.
class TabularGame final : public Game {
 public:
  /// `values` must have exactly 2^num_players entries, values[0] == 0.
  TabularGame(int num_players, std::vector<double> values);

  [[nodiscard]] int num_players() const override { return num_players_; }
  [[nodiscard]] double value(Coalition coalition) const override;

  /// Direct access to the value table (index = coalition bitmask).
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Returns the 0-normalisation of this game:
  /// V0(S) = V(S) - sum_{i in S} V({i}).
  [[nodiscard]] TabularGame zero_normalized() const;

 private:
  int num_players_;
  std::vector<double> values_;
};

/// A game defined by a callable. No caching: wrap with tabulate() before
/// running exponential algorithms.
class FunctionGame final : public Game {
 public:
  using ValueFn = std::function<double(Coalition)>;

  /// `fn` must return 0 for the empty coalition.
  FunctionGame(int num_players, ValueFn fn);

  [[nodiscard]] int num_players() const override { return num_players_; }
  [[nodiscard]] double value(Coalition coalition) const override;

 private:
  int num_players_;
  ValueFn fn_;
};

/// Evaluates `game` on every coalition and returns the tabular form.
/// Requires num_players() <= 24.
[[nodiscard]] TabularGame tabulate(const Game& game);

/// Budgeted tabulation: charges `budget` one unit per V(S) evaluation
/// (the dominant cost for model-backed games) and returns nullopt when
/// it trips before all 2^n values are computed. Same requirements as
/// tabulate().
[[nodiscard]] std::optional<TabularGame> tabulate_budgeted(
    const Game& game, const runtime::ComputeBudget& budget);

/// Sum of V({i}) over all players (the "act alone" total).
[[nodiscard]] double standalone_total(const Game& game);

}  // namespace fedshare::game
