// Transferable-utility coalitional games.
//
// A Game maps coalitions to values (the characteristic function V).
// Concrete games either tabulate all 2^n values (TabularGame) or wrap a
// callable (FunctionGame); tabulate() converts any game to tabular form,
// which the exact solvers use to avoid recomputing V.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/coalition.hpp"
#include "exec/value_cache.hpp"
#include "runtime/budget.hpp"

namespace fedshare::game {

/// Abstract transferable-utility game. Implementations must be
/// deterministic: value(S) may be called many times for the same S.
/// They must also be safe to call concurrently from exec workers —
/// value() is const and parallel tabulation evaluates disjoint masks
/// from multiple threads. Convention: value(empty) == 0.
class Game {
 public:
  virtual ~Game() = default;

  /// Number of players n (players are 0..n-1).
  [[nodiscard]] virtual int num_players() const = 0;

  /// Characteristic function V(S). `coalition` must only contain players
  /// < num_players().
  [[nodiscard]] virtual double value(Coalition coalition) const = 0;

  /// Budget-aware V(S). Follows the charging rule in runtime/budget.hpp:
  /// one unit per *distinct* V(S) materialisation, re-reads free. The
  /// default charges one unit then evaluates (every call materialises);
  /// TabularGame re-reads are free; CachedGame charges only on a cache
  /// miss. Returns nullopt when the budget trips before the value is
  /// produced.
  [[nodiscard]] virtual std::optional<double> value_budgeted(
      Coalition coalition, const runtime::ComputeBudget& budget) const;

  /// V of the grand coalition (convenience).
  [[nodiscard]] double grand_value() const {
    return value(Coalition::grand(num_players()));
  }
};

/// A game defined by an explicit table of 2^n values indexed by coalition
/// bitmask. This is the workhorse representation for exact algorithms.
class TabularGame final : public Game {
 public:
  /// `values` must have exactly 2^num_players entries, values[0] == 0.
  TabularGame(int num_players, std::vector<double> values);

  [[nodiscard]] int num_players() const override { return num_players_; }
  [[nodiscard]] double value(Coalition coalition) const override;

  /// Table reads are already-materialised values: free under the
  /// charging rule, so this never trips the budget.
  [[nodiscard]] std::optional<double> value_budgeted(
      Coalition coalition,
      const runtime::ComputeBudget& budget) const override;

  /// Direct access to the value table (index = coalition bitmask).
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Returns the 0-normalisation of this game:
  /// V0(S) = V(S) - sum_{i in S} V({i}).
  [[nodiscard]] TabularGame zero_normalized() const;

 private:
  int num_players_;
  std::vector<double> values_;
};

/// A game defined by a callable. No caching: wrap with tabulate() before
/// running exponential algorithms.
class FunctionGame final : public Game {
 public:
  using ValueFn = std::function<double(Coalition)>;

  /// `fn` must return 0 for the empty coalition.
  FunctionGame(int num_players, ValueFn fn);

  [[nodiscard]] int num_players() const override { return num_players_; }
  [[nodiscard]] double value(Coalition coalition) const override;

 private:
  int num_players_;
  ValueFn fn_;
};

/// A game decorated with a shared exec::ValueCache: each distinct V(S)
/// is computed at most once per cache and then shared by every consumer
/// (tabulation, Shapley, nucleolus, core checks, incentive and
/// sensitivity sweeps). Thread-safe whenever the base game is; the
/// cache outlives concurrent readers by construction (the caller owns
/// both). Budget accounting follows the charging rule: a hit is free, a
/// miss charges one unit.
class CachedGame final : public Game {
 public:
  /// Neither `base` nor `cache` is owned; both must outlive this game.
  CachedGame(const Game& base, exec::ValueCache& cache);

  [[nodiscard]] int num_players() const override;
  [[nodiscard]] double value(Coalition coalition) const override;
  [[nodiscard]] std::optional<double> value_budgeted(
      Coalition coalition,
      const runtime::ComputeBudget& budget) const override;

  [[nodiscard]] const exec::ValueCache& cache() const noexcept {
    return *cache_;
  }

 private:
  const Game* base_;
  exec::ValueCache* cache_;
};

/// Evaluates `game` on every coalition and returns the tabular form.
/// Requires num_players() <= 24. Already-tabular games return a copy of
/// their table without re-evaluating. Masks are evaluated in parallel
/// when the exec executor has threads > 1; each mask writes its own
/// slot, so the result is bit-identical at any thread count.
[[nodiscard]] TabularGame tabulate(const Game& game);

/// Budgeted tabulation: returns nullopt when `budget` trips before all
/// 2^n values are materialised. Charging follows the charging rule in
/// runtime/budget.hpp via Game::value_budgeted — one unit per distinct
/// V(S) materialisation, so an already-tabular game (or a CachedGame
/// hit) tabulates for free. Same requirements as tabulate(); runs in
/// parallel under the exec executor with forked child budgets.
[[nodiscard]] std::optional<TabularGame> tabulate_budgeted(
    const Game& game, const runtime::ComputeBudget& budget);

/// Sum of V({i}) over all players (the "act alone" total).
[[nodiscard]] double standalone_total(const Game& game);

}  // namespace fedshare::game
