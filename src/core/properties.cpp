#include "core/properties.hpp"

#include <stdexcept>

#include "io/table.hpp"

namespace fedshare::game {

std::string ViolationWitness::to_string() const {
  return first.to_string() + " vs " + second.to_string() +
         " (deficit " + io::format_double(deficit, 6) + ")";
}

std::optional<ViolationWitness> superadditivity_violation(const Game& game,
                                                          double tolerance) {
  const int n = game.num_players();
  if (n > 16) {
    throw std::invalid_argument(
        "superadditivity_violation: n must be <= 16 (O(3^n) check)");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  std::optional<ViolationWitness> worst;
  for (std::uint64_t s = 1; s <= grand; ++s) {
    const std::uint64_t complement = grand & ~s;
    // Enumerate non-empty submasks t of the complement with t's lowest
    // bit above s's lowest bit to visit each unordered pair once.
    for (std::uint64_t t = complement; t != 0;
         t = (t - 1) & complement) {
      if (t < s) break;  // submask enumeration is descending; prune half
      const double deficit = v[s] + v[t] - v[s | t];
      if (deficit > tolerance &&
          (!worst || deficit > worst->deficit)) {
        worst = ViolationWitness{Coalition::from_bits(s),
                                 Coalition::from_bits(t), deficit};
      }
    }
  }
  return worst;
}

std::optional<ViolationWitness> convexity_violation(const Game& game,
                                                    double tolerance) {
  const int n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("convexity_violation: n must be <= 20");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t count = std::uint64_t{1} << n;

  std::optional<ViolationWitness> worst;
  for (std::uint64_t s = 0; s < count; ++s) {
    for (int i = 0; i < n; ++i) {
      if ((s >> i) & 1u) continue;
      const std::uint64_t si = s | (std::uint64_t{1} << i);
      for (int j = i + 1; j < n; ++j) {
        if ((s >> j) & 1u) continue;
        const std::uint64_t sj = s | (std::uint64_t{1} << j);
        const std::uint64_t sij = si | (std::uint64_t{1} << j);
        const double deficit = (v[si] - v[s]) - (v[sij] - v[sj]);
        if (deficit > tolerance && (!worst || deficit > worst->deficit)) {
          worst = ViolationWitness{Coalition::from_bits(si),
                                   Coalition::from_bits(sj), deficit};
        }
      }
    }
  }
  return worst;
}

std::optional<ViolationWitness> monotonicity_violation(const Game& game,
                                                       double tolerance) {
  const int n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("monotonicity_violation: n must be <= 20");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t count = std::uint64_t{1} << n;

  std::optional<ViolationWitness> worst;
  for (std::uint64_t s = 0; s < count; ++s) {
    for (int i = 0; i < n; ++i) {
      if ((s >> i) & 1u) continue;
      const std::uint64_t si = s | (std::uint64_t{1} << i);
      const double deficit = v[s] - v[si];
      if (deficit > tolerance && (!worst || deficit > worst->deficit)) {
        worst = ViolationWitness{Coalition::from_bits(s),
                                 Coalition::from_bits(si), deficit};
      }
    }
  }
  return worst;
}

bool is_superadditive(const Game& game, double tolerance) {
  return !superadditivity_violation(game, tolerance).has_value();
}

bool is_convex(const Game& game, double tolerance) {
  return !convexity_violation(game, tolerance).has_value();
}

bool is_monotone(const Game& game, double tolerance) {
  return !monotonicity_violation(game, tolerance).has_value();
}

bool is_essential(const Game& game, double tolerance) {
  return game.grand_value() > standalone_total(game) + tolerance;
}

PropertyReport analyze_properties(const Game& game, double tolerance) {
  PropertyReport r;
  r.superadditive = is_superadditive(game, tolerance);
  r.convex = is_convex(game, tolerance);
  r.monotone = is_monotone(game, tolerance);
  r.essential = is_essential(game, tolerance);
  return r;
}

}  // namespace fedshare::game
