#include "core/shapley.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedshare::game {

namespace {

// splitmix64: small, fast, deterministic PRNG for permutation sampling.
// (sim/rng.hpp hosts the full RNG suite; core stays dependency-light.)
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform integer in [0, bound) by rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }
};

}  // namespace

namespace {

// Subset-formula accumulation over a tabulated game. Charges `budget`
// (when given) one unit per subset; returns nullopt if it trips.
std::optional<std::vector<double>> accumulate_subset_formula(
    const TabularGame& tab, const runtime::ComputeBudget* budget) {
  const int n = tab.num_players();
  const std::vector<double>& v = tab.values();

  // weight[s] = s! (n-s-1)! / n! for |S| = s, computed in log space to
  // stay finite for n up to 24.
  std::vector<double> log_fact(static_cast<std::size_t>(n) + 1, 0.0);
  for (int k = 2; k <= n; ++k) {
    log_fact[static_cast<std::size_t>(k)] =
        log_fact[static_cast<std::size_t>(k - 1)] + std::log(k);
  }
  std::vector<double> weight(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    weight[static_cast<std::size_t>(s)] = std::exp(
        log_fact[static_cast<std::size_t>(s)] +
        log_fact[static_cast<std::size_t>(n - s - 1)] -
        log_fact[static_cast<std::size_t>(n)]);
  }

  std::vector<double> phi(static_cast<std::size_t>(n), 0.0);
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    if (budget != nullptr && !budget->charge()) return std::nullopt;
    const int s = __builtin_popcountll(mask);
    if (s == n) continue;  // grand coalition: no player left to add
    const double w = weight[static_cast<std::size_t>(s)];
    const double base = v[mask];
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      const std::uint64_t with_i = mask | (std::uint64_t{1} << i);
      phi[static_cast<std::size_t>(i)] += w * (v[with_i] - base);
    }
  }
  return phi;
}

}  // namespace

std::vector<double> shapley_exact(const Game& game) {
  const int n = game.num_players();
  if (n == 0) return {};
  if (n > 24) {
    throw std::invalid_argument(
        "shapley_exact: n must be <= 24; use shapley_monte_carlo");
  }
  return *accumulate_subset_formula(tabulate(game), nullptr);
}

std::optional<std::vector<double>> shapley_exact_budgeted(
    const Game& game, const runtime::ComputeBudget& budget) {
  const int n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > 24) {
    throw std::invalid_argument(
        "shapley_exact_budgeted: n must be <= 24; use shapley_monte_carlo");
  }
  const auto tab = tabulate_budgeted(game, budget);
  if (!tab) return std::nullopt;
  return accumulate_subset_formula(*tab, &budget);
}

std::vector<double> shapley_permutations(const Game& game) {
  const int n = game.num_players();
  if (n == 0) return {};
  if (n > 10) {
    throw std::invalid_argument(
        "shapley_permutations: n must be <= 10 (n! blowup); use "
        "shapley_exact");
  }
  const TabularGame tab = tabulate(game);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::uint64_t permutations = 0;
  do {
    Coalition prefix;
    double prev = 0.0;
    for (const int p : order) {
      const Coalition next = prefix.with(p);
      const double val = tab.value(next);
      sum[static_cast<std::size_t>(p)] += val - prev;
      prefix = next;
      prev = val;
    }
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));

  for (double& s : sum) s /= static_cast<double>(permutations);
  return sum;
}

MonteCarloShapley shapley_monte_carlo(const Game& game, std::uint64_t samples,
                                      std::uint64_t seed,
                                      const runtime::ComputeBudget* budget) {
  const int n = game.num_players();
  if (samples < 2) {
    throw std::invalid_argument("shapley_monte_carlo: need samples >= 2");
  }
  MonteCarloShapley result;
  result.samples = samples;
  result.phi.assign(static_cast<std::size_t>(n), 0.0);
  result.standard_error.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  SplitMix64 rng{seed ^ 0xa02bdbf7bb3c0a7ULL};
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq(static_cast<std::size_t>(n), 0.0);

  std::uint64_t drawn = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    // One sample costs n V-evaluations; stop early when the budget trips,
    // but always complete two samples so the standard errors exist.
    if (budget != nullptr &&
        !budget->charge(static_cast<std::uint64_t>(n)) && s >= 2) {
      result.complete = false;
      break;
    }
    ++drawn;
    // Fisher-Yates shuffle.
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[j]);
    }
    Coalition prefix;
    double prev = 0.0;
    for (const int p : order) {
      const Coalition next = prefix.with(p);
      const double val = game.value(next);
      const double marginal = val - prev;
      sum[static_cast<std::size_t>(p)] += marginal;
      sum_sq[static_cast<std::size_t>(p)] += marginal * marginal;
      prefix = next;
      prev = val;
    }
  }

  result.samples = drawn;
  const auto count = static_cast<double>(drawn);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double mean = sum[ui] / count;
    result.phi[ui] = mean;
    const double variance =
        std::max(0.0, (sum_sq[ui] / count - mean * mean) * count /
                          (count - 1.0));
    result.standard_error[ui] = std::sqrt(variance / count);
  }
  return result;
}

MonteCarloShapley shapley_monte_carlo_antithetic(
    const Game& game, std::uint64_t samples, std::uint64_t seed,
    const runtime::ComputeBudget* budget) {
  const int n = game.num_players();
  if (samples < 2 || samples % 2 != 0) {
    throw std::invalid_argument(
        "shapley_monte_carlo_antithetic: need an even number of samples "
        ">= 2");
  }
  MonteCarloShapley result;
  result.samples = samples;
  result.phi.assign(static_cast<std::size_t>(n), 0.0);
  result.standard_error.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  SplitMix64 rng{seed ^ 0x9d2c5680aa60ce77ULL};
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq(static_cast<std::size_t>(n), 0.0);
  std::vector<double> pair_marginal(static_cast<std::size_t>(n), 0.0);

  const std::uint64_t pairs = samples / 2;
  std::uint64_t pairs_drawn = 0;
  for (std::uint64_t p = 0; p < pairs; ++p) {
    // One pair costs 2n V-evaluations; stop early when the budget trips,
    // but always complete one pair so the estimate exists.
    if (budget != nullptr &&
        !budget->charge(2 * static_cast<std::uint64_t>(n)) && p >= 1) {
      result.complete = false;
      break;
    }
    ++pairs_drawn;
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[j]);
    }
    std::fill(pair_marginal.begin(), pair_marginal.end(), 0.0);
    for (int pass = 0; pass < 2; ++pass) {
      Coalition prefix;
      double prev = 0.0;
      for (int k = 0; k < n; ++k) {
        const int player =
            pass == 0 ? order[static_cast<std::size_t>(k)]
                      : order[static_cast<std::size_t>(n - 1 - k)];
        const Coalition next = prefix.with(player);
        const double val = game.value(next);
        pair_marginal[static_cast<std::size_t>(player)] +=
            0.5 * (val - prev);
        prefix = next;
        prev = val;
      }
    }
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      sum[ui] += pair_marginal[ui];
      sum_sq[ui] += pair_marginal[ui] * pair_marginal[ui];
    }
  }

  result.samples = 2 * pairs_drawn;
  const auto count = static_cast<double>(pairs_drawn);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double mean = sum[ui] / count;
    result.phi[ui] = mean;
    const double variance =
        count > 1.0
            ? std::max(0.0, (sum_sq[ui] / count - mean * mean) * count /
                                (count - 1.0))
            : 0.0;
    result.standard_error[ui] = std::sqrt(variance / count);
  }
  return result;
}

std::vector<double> normalize_shares(const std::vector<double>& values) {
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  std::vector<double> out(values.size());
  if (values.empty()) return out;
  if (std::abs(total) < 1e-12) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(out.size()));
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = values[i] / total;
  return out;
}

}  // namespace fedshare::game
