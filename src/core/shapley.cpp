#include "core/shapley.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/lattice.hpp"
#include "exec/pool.hpp"

namespace fedshare::game {

namespace {

// splitmix64: small, fast, deterministic PRNG for permutation sampling.
// (sim/rng.hpp hosts the full RNG suite; core stays dependency-light.)
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform integer in [0, bound) by rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }
};

}  // namespace

namespace {

// Subset-formula accumulation over a tabulated game. Charges `budget`
// (when given) one unit per subset; returns nullopt if it trips.
std::optional<std::vector<double>> accumulate_subset_formula(
    const TabularGame& tab, const runtime::ComputeBudget* budget) {
  const int n = tab.num_players();
  const std::vector<double>& v = tab.values();
  const std::vector<double> weight = shapley_subset_weights(n);
  std::vector<double> phi(static_cast<std::size_t>(n), 0.0);
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    if (budget != nullptr && !budget->charge()) return std::nullopt;
    const int s = __builtin_popcountll(mask);
    if (s == n) continue;  // grand coalition: no player left to add
    const double w = weight[static_cast<std::size_t>(s)];
    const double base = v[mask];
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      const std::uint64_t with_i = mask | (std::uint64_t{1} << i);
      phi[static_cast<std::size_t>(i)] += w * (v[with_i] - base);
    }
  }
  return phi;
}

}  // namespace

std::vector<double> shapley_exact(const Game& game) {
  const int n = game.num_players();
  if (n == 0) return {};
  if (n > 24) {
    throw std::invalid_argument(
        "shapley_exact: n must be <= 24; use shapley_monte_carlo");
  }
  // The lattice kernel accumulates each phi[i] in the same order as the
  // scalar subset formula, so this rewire is bitwise-neutral.
  return shapley_lattice(tabulate(game));
}

std::optional<std::vector<double>> shapley_exact_budgeted(
    const Game& game, const runtime::ComputeBudget& budget) {
  const int n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > 24) {
    throw std::invalid_argument(
        "shapley_exact_budgeted: n must be <= 24; use shapley_monte_carlo");
  }
  const auto tab = tabulate_budgeted(game, budget);
  if (!tab) return std::nullopt;
  return accumulate_subset_formula(*tab, &budget);
}

std::vector<double> shapley_permutations(const Game& game) {
  const int n = game.num_players();
  if (n == 0) return {};
  if (n > 10) {
    throw std::invalid_argument(
        "shapley_permutations: n must be <= 10 (n! blowup); use "
        "shapley_exact");
  }
  const TabularGame tab = tabulate(game);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::uint64_t permutations = 0;
  do {
    Coalition prefix;
    double prev = 0.0;
    for (const int p : order) {
      const Coalition next = prefix.with(p);
      const double val = tab.value(next);
      sum[static_cast<std::size_t>(p)] += val - prev;
      prefix = next;
      prev = val;
    }
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));

  for (double& s : sum) s /= static_cast<double>(permutations);
  return sum;
}

namespace {

// Fixed Monte-Carlo chunking: samples are decomposed into chunks of
// kMcChunkSamples (pairs into kMcChunkPairs), each chunk drawing from
// its own exec::chunk_seed stream and accumulating a private partial.
// Partials are folded in ascending chunk order, so the estimate is
// bit-identical at any thread count (including 1) — the decomposition,
// the streams, and the fold order never depend on the schedule.
constexpr std::uint64_t kMcChunkSamples = 32;
constexpr std::uint64_t kMcChunkPairs = 16;

struct McPartial {
  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::uint64_t drawn = 0;
};

// Plain-MC samples with global indices [begin, end) from the chunk's
// stream. Budget: one sample costs n units, charged to `budget` (the
// parent in serial runs, a forked child in parallel runs); returns
// false on a trip, except that the first two global samples always
// complete so the standard errors stay defined.
bool run_mc_chunk(const Game& game, int n, std::uint64_t begin,
                  std::uint64_t end, std::uint64_t stream_seed,
                  const runtime::ComputeBudget* budget, McPartial& out) {
  out.sum.assign(static_cast<std::size_t>(n), 0.0);
  out.sum_sq.assign(static_cast<std::size_t>(n), 0.0);
  out.drawn = 0;
  SplitMix64 rng{stream_seed};
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::uint64_t s = begin; s < end; ++s) {
    if (budget != nullptr &&
        !budget->charge(static_cast<std::uint64_t>(n)) && s >= 2) {
      return false;
    }
    ++out.drawn;
    // Fisher-Yates shuffle.
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[j]);
    }
    Coalition prefix;
    double prev = 0.0;
    for (const int p : order) {
      const Coalition next = prefix.with(p);
      const double val = game.value(next);
      const double marginal = val - prev;
      out.sum[static_cast<std::size_t>(p)] += marginal;
      out.sum_sq[static_cast<std::size_t>(p)] += marginal * marginal;
      prefix = next;
      prev = val;
    }
  }
  return true;
}

// Antithetic pairs with global indices [begin, end) from the chunk's
// stream. A pair costs 2n units; the first global pair always
// completes.
bool run_antithetic_chunk(const Game& game, int n, std::uint64_t begin,
                          std::uint64_t end, std::uint64_t stream_seed,
                          const runtime::ComputeBudget* budget,
                          McPartial& out) {
  out.sum.assign(static_cast<std::size_t>(n), 0.0);
  out.sum_sq.assign(static_cast<std::size_t>(n), 0.0);
  out.drawn = 0;
  SplitMix64 rng{stream_seed};
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> pair_marginal(static_cast<std::size_t>(n), 0.0);
  for (std::uint64_t p = begin; p < end; ++p) {
    if (budget != nullptr &&
        !budget->charge(2 * static_cast<std::uint64_t>(n)) && p >= 1) {
      return false;
    }
    ++out.drawn;
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[j]);
    }
    std::fill(pair_marginal.begin(), pair_marginal.end(), 0.0);
    for (int pass = 0; pass < 2; ++pass) {
      Coalition prefix;
      double prev = 0.0;
      for (int k = 0; k < n; ++k) {
        const int player =
            pass == 0 ? order[static_cast<std::size_t>(k)]
                      : order[static_cast<std::size_t>(n - 1 - k)];
        const Coalition next = prefix.with(player);
        const double val = game.value(next);
        pair_marginal[static_cast<std::size_t>(player)] +=
            0.5 * (val - prev);
        prefix = next;
        prev = val;
      }
    }
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      out.sum[ui] += pair_marginal[ui];
      out.sum_sq[ui] += pair_marginal[ui] * pair_marginal[ui];
    }
  }
  return true;
}

// Runs `chunk_fn(range, budget-or-null)` over [0, total) in chunks of
// `chunk_size`, threading forked child budgets through the exec
// executor when a parent budget is present.
template <typename ChunkFn>
void run_mc_chunks(std::uint64_t total, std::uint64_t chunk_size,
                   const runtime::ComputeBudget* budget,
                   const ChunkFn& chunk_fn) {
  if (budget != nullptr) {
    exec::parallel_for_budgeted(
        0, total, chunk_size, *budget,
        [&](const exec::ChunkRange& r, const runtime::ComputeBudget& b) {
          return chunk_fn(r, &b);
        });
  } else {
    exec::parallel_for(0, total, chunk_size,
                       [&](const exec::ChunkRange& r) {
                         return chunk_fn(r, nullptr);
                       });
  }
}

// Ascending-chunk-order fold of the partials (fixed FP rounding).
std::uint64_t fold_partials(const std::vector<McPartial>& partials, int n,
                            std::vector<double>& sum,
                            std::vector<double>& sum_sq) {
  sum.assign(static_cast<std::size_t>(n), 0.0);
  sum_sq.assign(static_cast<std::size_t>(n), 0.0);
  std::uint64_t drawn = 0;
  for (const McPartial& part : partials) {
    if (part.drawn == 0) continue;
    drawn += part.drawn;
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      sum[ui] += part.sum[ui];
      sum_sq[ui] += part.sum_sq[ui];
    }
  }
  return drawn;
}

}  // namespace

MonteCarloShapley shapley_monte_carlo(const Game& game, std::uint64_t samples,
                                      std::uint64_t seed,
                                      const runtime::ComputeBudget* budget) {
  const int n = game.num_players();
  if (samples < 2) {
    throw std::invalid_argument("shapley_monte_carlo: need samples >= 2");
  }
  MonteCarloShapley result;
  result.samples = samples;
  result.phi.assign(static_cast<std::size_t>(n), 0.0);
  result.standard_error.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  const std::uint64_t base = seed ^ 0xa02bdbf7bb3c0a7ULL;
  const std::uint64_t num_chunks =
      (samples + kMcChunkSamples - 1) / kMcChunkSamples;
  std::vector<McPartial> partials(num_chunks);
  run_mc_chunks(samples, kMcChunkSamples, budget,
                [&](const exec::ChunkRange& r,
                    const runtime::ComputeBudget* b) {
                  return run_mc_chunk(game, n, r.begin, r.end,
                                      exec::chunk_seed(base, r.index), b,
                                      partials[r.index]);
                });

  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::uint64_t drawn = fold_partials(partials, n, sum, sum_sq);
  if (drawn < 2) {
    // A parallel cancellation can skip chunk 0 before its budget-free
    // minimum ran; redo it with an always-tripped budget, which draws
    // exactly the first two samples.
    const runtime::ComputeBudget floor_budget =
        runtime::ComputeBudget().cap_nodes(0);
    run_mc_chunk(game, n, 0, std::min(samples, kMcChunkSamples),
                 exec::chunk_seed(base, 0), &floor_budget, partials[0]);
    drawn = fold_partials(partials, n, sum, sum_sq);
  }

  result.complete = drawn == samples;
  result.samples = drawn;
  const auto count = static_cast<double>(drawn);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double mean = sum[ui] / count;
    result.phi[ui] = mean;
    const double variance =
        std::max(0.0, (sum_sq[ui] / count - mean * mean) * count /
                          (count - 1.0));
    result.standard_error[ui] = std::sqrt(variance / count);
  }
  return result;
}

MonteCarloShapley shapley_monte_carlo_antithetic(
    const Game& game, std::uint64_t samples, std::uint64_t seed,
    const runtime::ComputeBudget* budget) {
  const int n = game.num_players();
  if (samples < 2 || samples % 2 != 0) {
    throw std::invalid_argument(
        "shapley_monte_carlo_antithetic: need an even number of samples "
        ">= 2");
  }
  MonteCarloShapley result;
  result.samples = samples;
  result.phi.assign(static_cast<std::size_t>(n), 0.0);
  result.standard_error.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  const std::uint64_t base = seed ^ 0x9d2c5680aa60ce77ULL;
  const std::uint64_t pairs = samples / 2;
  const std::uint64_t num_chunks =
      (pairs + kMcChunkPairs - 1) / kMcChunkPairs;
  std::vector<McPartial> partials(num_chunks);
  run_mc_chunks(pairs, kMcChunkPairs, budget,
                [&](const exec::ChunkRange& r,
                    const runtime::ComputeBudget* b) {
                  return run_antithetic_chunk(
                      game, n, r.begin, r.end,
                      exec::chunk_seed(base, r.index), b,
                      partials[r.index]);
                });

  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::uint64_t pairs_drawn = fold_partials(partials, n, sum, sum_sq);
  if (pairs_drawn < 1) {
    // See shapley_monte_carlo: guarantee the one-pair minimum even when
    // a parallel cancellation skipped chunk 0.
    const runtime::ComputeBudget floor_budget =
        runtime::ComputeBudget().cap_nodes(0);
    run_antithetic_chunk(game, n, 0, std::min(pairs, kMcChunkPairs),
                         exec::chunk_seed(base, 0), &floor_budget,
                         partials[0]);
    pairs_drawn = fold_partials(partials, n, sum, sum_sq);
  }

  result.complete = pairs_drawn == pairs;
  result.samples = 2 * pairs_drawn;
  const auto count = static_cast<double>(pairs_drawn);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double mean = sum[ui] / count;
    result.phi[ui] = mean;
    const double variance =
        count > 1.0
            ? std::max(0.0, (sum_sq[ui] / count - mean * mean) * count /
                                (count - 1.0))
            : 0.0;
    result.standard_error[ui] = std::sqrt(variance / count);
  }
  return result;
}

std::vector<double> normalize_shares(const std::vector<double>& values) {
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  std::vector<double> out(values.size());
  if (values.empty()) return out;
  if (std::abs(total) < 1e-12) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(out.size()));
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = values[i] / total;
  return out;
}

}  // namespace fedshare::game
