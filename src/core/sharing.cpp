#include "core/sharing.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/banzhaf.hpp"
#include "core/core_solution.hpp"
#include "core/nucleolus.hpp"
#include "core/shapley.hpp"

namespace fedshare::game {

const char* to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kShapley: return "shapley";
    case Scheme::kProportionalAvailability: return "prop-availability";
    case Scheme::kProportionalConsumption: return "prop-consumption";
    case Scheme::kEqual: return "equal";
    case Scheme::kNucleolus: return "nucleolus";
    case Scheme::kBanzhaf: return "banzhaf";
  }
  return "unknown";
}

std::vector<double> equal_shares(int num_players) {
  if (num_players < 1) {
    throw std::invalid_argument("equal_shares: need at least one player");
  }
  return std::vector<double>(static_cast<std::size_t>(num_players),
                             1.0 / num_players);
}

std::vector<double> proportional_shares(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("proportional_shares: empty weights");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "proportional_shares: weights must be non-negative");
    }
    total += w;
  }
  if (total < 1e-12) return equal_shares(static_cast<int>(weights.size()));
  std::vector<double> out(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / total;
  return out;
}

std::vector<double> shapley_shares(const Game& game) {
  return normalize_shares(shapley_exact(game));
}

std::vector<double> nucleolus_shares(const Game& game) {
  return nucleolus_shares(game, lp::SimplexOptions{});
}

std::vector<double> nucleolus_shares(const Game& game,
                                     const lp::SimplexOptions& options) {
  const NucleolusResult r = nucleolus(game, options);
  if (!r.solved) {
    throw std::runtime_error("nucleolus_shares: computation failed");
  }
  const double total = game.grand_value();
  if (std::abs(total) < 1e-12) return equal_shares(game.num_players());
  std::vector<double> out(r.allocation.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = r.allocation[i] / total;
  }
  return out;
}

std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights) {
  return compare_schemes(game, availability_weights, consumption_weights,
                         lp::SimplexOptions{});
}

std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights,
    const lp::SimplexOptions& lp_options) {
  return compare_schemes(game, availability_weights, consumption_weights,
                         lp_options, nullptr, nullptr);
}

std::vector<SchemeOutcome> compare_schemes(
    const Game& game, const std::vector<double>& availability_weights,
    const std::vector<double>& consumption_weights,
    const lp::SimplexOptions& lp_options, const PlayerPartition* partition,
    QuotientNucleolusInfo* info) {
  const int n = game.num_players();
  // Tabulate once: every scheme below (Shapley, the per-scheme core
  // checks, nucleolus, Banzhaf) re-reads the same table instead of
  // re-solving each coalition's V(S), and tabulate()'s TabularGame
  // fast path makes the nested tabulations inside those solvers free.
  const TabularGame tab = tabulate(game);
  const double total = tab.grand_value();

  std::vector<SchemeOutcome> out;
  auto push = [&](Scheme scheme, std::vector<double> shares) {
    SchemeOutcome o;
    o.scheme = scheme;
    o.payoffs.resize(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
      o.payoffs[i] = shares[i] * total;
    }
    o.shares = std::move(shares);
    if (n <= 16) o.in_core = in_core(tab, o.payoffs);
    out.push_back(std::move(o));
  };

  push(Scheme::kShapley, shapley_shares(tab));
  if (!availability_weights.empty()) {
    if (availability_weights.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument(
          "compare_schemes: availability weight count must equal n");
    }
    push(Scheme::kProportionalAvailability,
         proportional_shares(availability_weights));
  }
  if (!consumption_weights.empty()) {
    if (consumption_weights.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument(
          "compare_schemes: consumption weight count must equal n");
    }
    push(Scheme::kProportionalConsumption,
         proportional_shares(consumption_weights));
  }
  push(Scheme::kEqual, equal_shares(n));
  // Nucleolus: the orbit-row quotient formulation when a non-trivial
  // partition certifies interchangeable players (scales with orbit
  // count), the dense 2^n-row formulation otherwise (n <= 10 only).
  // The all-singletons fallback keeps this overload byte-identical to
  // the partition-less one: every orbit is a mask, so quotienting
  // saves nothing.
  if (partition != nullptr && !partition->is_trivial()) {
    const QuotientGame quotient(tab, *partition);
    const NucleolusResult r = nucleolus_quotient(quotient, lp_options);
    if (!r.solved) {
      throw std::runtime_error("compare_schemes: quotient nucleolus failed");
    }
    if (info != nullptr) {
      info->attempted = true;
      info->used = true;
      info->orbit_rows = r.excess_rows;
      info->dense_rows =
          n < 63 ? (std::uint64_t{1} << n) - 2 : 0;
      info->lps_solved = r.lps_solved;
      info->pivots = r.pivots;
      const auto stats = quotient.cache().stats();
      info->orbit_hits = stats.hits;
      info->orbit_misses = stats.misses;
    }
    std::vector<double> shares;
    if (std::abs(total) < 1e-12) {
      shares = equal_shares(n);
    } else {
      shares.resize(r.allocation.size());
      for (std::size_t i = 0; i < shares.size(); ++i) {
        shares[i] = r.allocation[i] / total;
      }
    }
    push(Scheme::kNucleolus, std::move(shares));
  } else if (n <= 10) {
    push(Scheme::kNucleolus, nucleolus_shares(tab, lp_options));
  }
  push(Scheme::kBanzhaf, banzhaf_index(tab));
  return out;
}

}  // namespace fedshare::game
