#include "core/core_solution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/simplex.hpp"

namespace fedshare::game {

LeastCoreResult least_core(const Game& game) {
  return least_core(game, lp::SimplexOptions{});
}

LeastCoreResult least_core(const Game& game, const lp::SimplexOptions& options,
                           lp::Basis* warm) {
  const int n = game.num_players();
  if (n < 1 || n > 12) {
    throw std::invalid_argument("least_core: n must be in [1, 12]");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  // Variables: x_0..x_{n-1} (free) and epsilon (free, index n).
  const auto nv = static_cast<std::size_t>(n);
  lp::Problem prob(nv + 1, lp::Objective::kMinimize);
  for (std::size_t i = 0; i <= nv; ++i) prob.set_free(i);
  prob.set_objective_coefficient(nv, 1.0);

  // Efficiency: sum x_i = V(N).
  {
    std::vector<double> row(nv + 1, 0.0);
    for (std::size_t i = 0; i < nv; ++i) row[i] = 1.0;
    prob.add_constraint(std::move(row), lp::Relation::kEqual, v[grand]);
  }
  // x(S) + epsilon >= V(S) for every proper non-empty S.
  for (std::uint64_t mask = 1; mask < grand; ++mask) {
    std::vector<double> row(nv + 1, 0.0);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) row[static_cast<std::size_t>(i)] = 1.0;
    }
    row[nv] = 1.0;
    prob.add_constraint(std::move(row), lp::Relation::kGreaterEqual, v[mask]);
  }

  LeastCoreResult out;
  lp::Solution sol;
  if (options.solver == lp::SolverKind::kRevised) {
    lp::RevisedSimplex engine(prob, options);
    sol = warm != nullptr ? engine.solve_from_basis(*warm) : engine.solve();
    if (warm != nullptr && sol.optimal()) *warm = engine.basis();
  } else {
    sol = lp::solve(prob, options);
  }
  if (!sol.optimal()) return out;
  out.solved = true;
  out.epsilon = sol.x[nv];
  out.allocation.assign(sol.x.begin(), sol.x.begin() + n);
  return out;
}

bool in_core(const Game& game, const std::vector<double>& allocation,
             double tolerance) {
  const int n = game.num_players();
  if (allocation.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("in_core: allocation size must equal n");
  }
  double total = 0.0;
  for (const double a : allocation) total += a;
  if (std::abs(total - game.grand_value()) > tolerance) return false;
  return max_core_violation(game, allocation) <= tolerance;
}

double max_core_violation(const Game& game,
                          const std::vector<double>& allocation) {
  const int n = game.num_players();
  if (allocation.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "max_core_violation: allocation size must equal n");
  }
  if (n > 24) {
    throw std::invalid_argument("max_core_violation: n must be <= 24");
  }
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::uint64_t mask = 1; mask < grand; ++mask) {
    double x_s = 0.0;
    std::uint64_t b = mask;
    while (b != 0) {
      x_s += allocation[static_cast<std::size_t>(__builtin_ctzll(b))];
      b &= b - 1;
    }
    worst = std::max(worst, game.value(Coalition::from_bits(mask)) - x_s);
  }
  return worst;
}

bool core_nonempty(const Game& game, double tolerance) {
  const LeastCoreResult r = least_core(game);
  if (!r.solved) {
    throw std::runtime_error("core_nonempty: least-core LP did not solve");
  }
  return r.epsilon <= tolerance;
}

}  // namespace fedshare::game
