#include "core/coalition.hpp"

#include <stdexcept>

namespace fedshare::game {

namespace {
void check_player(int player) {
  if (player < 0 || player >= Coalition::kMaxPlayers) {
    throw std::out_of_range("Coalition: player index out of range");
  }
}
}  // namespace

Coalition Coalition::grand(int num_players) {
  if (num_players < 0 || num_players > kMaxPlayers) {
    throw std::invalid_argument("Coalition::grand: bad player count");
  }
  if (num_players == 0) return {};
  if (num_players == kMaxPlayers) return from_bits(~std::uint64_t{0});
  return from_bits((std::uint64_t{1} << num_players) - 1);
}

Coalition Coalition::single(int player) {
  check_player(player);
  return from_bits(std::uint64_t{1} << player);
}

Coalition Coalition::of(std::initializer_list<int> players) {
  Coalition c;
  for (const int p : players) c = c.with(p);
  return c;
}

bool Coalition::contains(int player) const {
  check_player(player);
  return (bits_ >> player) & 1u;
}

Coalition Coalition::with(int player) const {
  check_player(player);
  return from_bits(bits_ | (std::uint64_t{1} << player));
}

Coalition Coalition::without(int player) const {
  check_player(player);
  return from_bits(bits_ & ~(std::uint64_t{1} << player));
}

std::vector<int> Coalition::members() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(size()));
  std::uint64_t b = bits_;
  while (b != 0) {
    const int p = __builtin_ctzll(b);
    out.push_back(p);
    b &= b - 1;
  }
  return out;
}

std::string Coalition::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const int p : members()) {
    if (!first) out += ',';
    out += std::to_string(p);
    first = false;
  }
  out += '}';
  return out;
}

std::vector<Coalition> all_coalitions(int num_players) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument(
        "all_coalitions: n must be in [0, 24]; use sampling beyond that");
  }
  const std::uint64_t count = std::uint64_t{1} << num_players;
  std::vector<Coalition> out;
  out.reserve(count);
  for (std::uint64_t m = 0; m < count; ++m) {
    out.push_back(Coalition::from_bits(m));
  }
  return out;
}

}  // namespace fedshare::game
