// Runtime-dispatched SIMD kernels for the subset-lattice hot loops.
//
// Two shapes dominate core/lattice.cpp: the zeta/Moebius pair passes
// (hi ±= lo over all pairs of a bit) and the Shapley/Banzhaf marginal
// sums (acc += w * (v[hi] - v[lo]) over all pairs of a player's bit).
// Both are legal to vectorize under the repo's bitwise-determinism
// contract:
//
//  * Pair passes: within one bit pass every slot belongs to exactly one
//    (lo, hi) pair, so the per-slot update `hi ±= lo` is independent of
//    every other slot's — vector lanes only interleave *independent*
//    operations and never reorder any slot's own FP sequence.
//  * Marginal sums: the per-pair product w * (v[hi] - v[lo]) is one
//    subtraction then one multiplication per element (no FMA — fusing
//    would drop a rounding step the scalar loop performs); products are
//    computed into a tile and then accumulated scalar in ascending pair
//    order, which is the scalar loop's exact addition sequence.
//
// For bit >= 2 the lo slots of consecutive pairs form contiguous runs
// of length 2^bit (hi runs shifted by 2^bit), so plain vector loads
// suffice; bits 0 and 1 stay scalar (runs too short to vectorize).
//
// Dispatch: AVX2 paths are compiled behind __attribute__((target)) and
// selected at runtime via CPU detection. Mode overrides exist for tests
// (kForceScalar / kForceSimd run both code paths on any host; forcing
// SIMD without AVX2 exercises the run-decomposed kernels with scalar
// arithmetic — identical results by the argument above).
#pragma once

#include <cstdint>

namespace fedshare::game::simd {

enum class Mode {
  kAuto,         ///< use AVX2 when the CPU supports it (default)
  kForceScalar,  ///< always the scalar reference loops
  kForceSimd,    ///< always the run-decomposed kernels (vector when able)
};

/// Overrides kernel dispatch process-wide (atomic; tests only).
void set_mode(Mode mode) noexcept;
[[nodiscard]] Mode mode() noexcept;

/// True when this process can execute the AVX2 paths.
[[nodiscard]] bool cpu_has_avx2() noexcept;

/// Zeta pair pass over pair indices [begin, end) of `bit`:
/// values[lo | 2^bit] += values[lo], each pair independent.
void add_pass(double* values, std::uint64_t begin, std::uint64_t end,
              int bit);

/// Moebius pair pass: values[lo | 2^bit] -= values[lo].
void sub_pass(double* values, std::uint64_t begin, std::uint64_t end,
              int bit);

/// Weighted marginal sum for player `i` over all 2^(n-1) pairs:
/// sum_u wvec[u] * (v[lo_u | 2^i] - v[lo_u]) accumulated in ascending
/// pair order — bitwise the scalar marginal loop. `wvec` holds one
/// weight per pair index (for Shapley, weight[popcount(u)] — popcount
/// is invariant under the zero-bit insertion, so one table serves every
/// player); pass nullptr to use the constant `scale` (Banzhaf).
[[nodiscard]] double marginal_sum(const double* v, int num_players, int i,
                                  const double* wvec, double scale);

}  // namespace fedshare::game::simd
