#include "core/lattice_simd.hpp"

#include <algorithm>
#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FEDSHARE_X86 1
#else
#define FEDSHARE_X86 0
#endif

namespace fedshare::game::simd {

namespace {

std::atomic<Mode> g_mode{Mode::kAuto};

// Products per marginal tile: vector-compute the tile, then accumulate
// it scalar in order. Small enough to stay in L1 alongside the source
// runs.
constexpr std::uint64_t kMarginalTile = 512;

inline std::uint64_t lo_of_pair(std::uint64_t p, int bit) noexcept {
  const std::uint64_t low = p & ((std::uint64_t{1} << bit) - 1);
  return ((p >> bit) << (bit + 1)) | low;
}

bool detect_avx2() noexcept {
#if FEDSHARE_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool use_vector() noexcept {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case Mode::kForceScalar: return false;
    case Mode::kForceSimd: return cpu_has_avx2();
    case Mode::kAuto: break;
  }
  return cpu_has_avx2();
}

// True when the run-decomposed kernel shape should be used at all
// (kForceSimd without AVX2 still runs it, with scalar arithmetic).
bool use_runs() noexcept {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case Mode::kForceScalar: return false;
    case Mode::kForceSimd: return true;
    case Mode::kAuto: break;
  }
  return cpu_has_avx2();
}

// ---- scalar reference bodies ------------------------------------------

void add_pass_scalar(double* values, std::uint64_t begin, std::uint64_t end,
                     int bit) {
  const std::uint64_t step = std::uint64_t{1} << bit;
  for (std::uint64_t p = begin; p < end; ++p) {
    const std::uint64_t lo = lo_of_pair(p, bit);
    values[lo | step] += values[lo];
  }
}

void sub_pass_scalar(double* values, std::uint64_t begin, std::uint64_t end,
                     int bit) {
  const std::uint64_t step = std::uint64_t{1} << bit;
  for (std::uint64_t p = begin; p < end; ++p) {
    const std::uint64_t lo = lo_of_pair(p, bit);
    values[lo | step] -= values[lo];
  }
}

double marginal_scalar(const double* v, int num_players, int i,
                       const double* wvec, double scale) {
  const std::uint64_t half = std::uint64_t{1} << (num_players - 1);
  const std::uint64_t bit = std::uint64_t{1} << i;
  double acc = 0.0;
  for (std::uint64_t u = 0; u < half; ++u) {
    const std::uint64_t mask = lo_of_pair(u, i);
    const double w = wvec != nullptr ? wvec[u] : scale;
    acc += w * (v[mask | bit] - v[mask]);
  }
  return acc;
}

// ---- run bodies (contiguous lo/hi, bit >= 2) --------------------------

#if FEDSHARE_X86
__attribute__((target("avx2"))) void add_run_avx2(double* hi,
                                                  const double* lo,
                                                  std::uint64_t len) {
  std::uint64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d a = _mm256_loadu_pd(hi + j);
    const __m256d b = _mm256_loadu_pd(lo + j);
    _mm256_storeu_pd(hi + j, _mm256_add_pd(a, b));
  }
  for (; j < len; ++j) hi[j] += lo[j];
}

__attribute__((target("avx2"))) void sub_run_avx2(double* hi,
                                                  const double* lo,
                                                  std::uint64_t len) {
  std::uint64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d a = _mm256_loadu_pd(hi + j);
    const __m256d b = _mm256_loadu_pd(lo + j);
    _mm256_storeu_pd(hi + j, _mm256_sub_pd(a, b));
  }
  for (; j < len; ++j) hi[j] -= lo[j];
}

// t[j] = w[j] * (hi[j] - lo[j]) — explicit sub then mul, never FMA: the
// scalar loop performs two roundings per element and contraction would
// skip one.
__attribute__((target("avx2"))) void marginal_tile_avx2(
    const double* hi, const double* lo, const double* w, double* t,
    std::uint64_t len) {
  std::uint64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(hi + j),
                                    _mm256_loadu_pd(lo + j));
    _mm256_storeu_pd(t + j, _mm256_mul_pd(_mm256_loadu_pd(w + j), d));
  }
  for (; j < len; ++j) t[j] = w[j] * (hi[j] - lo[j]);
}

__attribute__((target("avx2"))) void marginal_tile_const_avx2(
    const double* hi, const double* lo, double scale, double* t,
    std::uint64_t len) {
  const __m256d ws = _mm256_set1_pd(scale);
  std::uint64_t j = 0;
  for (; j + 4 <= len; j += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(hi + j),
                                    _mm256_loadu_pd(lo + j));
    _mm256_storeu_pd(t + j, _mm256_mul_pd(ws, d));
  }
  for (; j < len; ++j) t[j] = scale * (hi[j] - lo[j]);
}
#endif  // FEDSHARE_X86

void add_run(double* hi, const double* lo, std::uint64_t len, bool vec) {
#if FEDSHARE_X86
  if (vec) {
    add_run_avx2(hi, lo, len);
    return;
  }
#else
  (void)vec;
#endif
  for (std::uint64_t j = 0; j < len; ++j) hi[j] += lo[j];
}

void sub_run(double* hi, const double* lo, std::uint64_t len, bool vec) {
#if FEDSHARE_X86
  if (vec) {
    sub_run_avx2(hi, lo, len);
    return;
  }
#else
  (void)vec;
#endif
  for (std::uint64_t j = 0; j < len; ++j) hi[j] -= lo[j];
}

void marginal_tile(const double* hi, const double* lo, const double* w,
                   double scale, double* t, std::uint64_t len, bool vec) {
#if FEDSHARE_X86
  if (vec) {
    if (w != nullptr) {
      marginal_tile_avx2(hi, lo, w, t, len);
    } else {
      marginal_tile_const_avx2(hi, lo, scale, t, len);
    }
    return;
  }
#else
  (void)vec;
#endif
  if (w != nullptr) {
    for (std::uint64_t j = 0; j < len; ++j) t[j] = w[j] * (hi[j] - lo[j]);
  } else {
    for (std::uint64_t j = 0; j < len; ++j) t[j] = scale * (hi[j] - lo[j]);
  }
}

template <typename RunFn>
void pass_by_runs(double* values, std::uint64_t begin, std::uint64_t end,
                  int bit, const RunFn& run) {
  // Pairs sharing p >> bit have contiguous lo slots; a run covers the
  // pairs [q * step, (q+1) * step) clipped to [begin, end).
  const std::uint64_t step = std::uint64_t{1} << bit;
  std::uint64_t p = begin;
  while (p < end) {
    const std::uint64_t run_end = std::min(end, ((p >> bit) + 1) << bit);
    double* lo = values + lo_of_pair(p, bit);
    run(lo + step, lo, run_end - p);
    p = run_end;
  }
}

}  // namespace

void set_mode(Mode mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
}

Mode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

bool cpu_has_avx2() noexcept {
  static const bool has = detect_avx2();
  return has;
}

void add_pass(double* values, std::uint64_t begin, std::uint64_t end,
              int bit) {
  if (bit < 2 || !use_runs()) {
    add_pass_scalar(values, begin, end, bit);
    return;
  }
  const bool vec = use_vector();
  pass_by_runs(values, begin, end, bit,
               [&](double* hi, const double* lo, std::uint64_t len) {
                 add_run(hi, lo, len, vec);
               });
}

void sub_pass(double* values, std::uint64_t begin, std::uint64_t end,
              int bit) {
  if (bit < 2 || !use_runs()) {
    sub_pass_scalar(values, begin, end, bit);
    return;
  }
  const bool vec = use_vector();
  pass_by_runs(values, begin, end, bit,
               [&](double* hi, const double* lo, std::uint64_t len) {
                 sub_run(hi, lo, len, vec);
               });
}

double marginal_sum(const double* v, int num_players, int i,
                    const double* wvec, double scale) {
  if (i < 2 || !use_runs()) {
    return marginal_scalar(v, num_players, i, wvec, scale);
  }
  const bool vec = use_vector();
  const std::uint64_t half = std::uint64_t{1} << (num_players - 1);
  const std::uint64_t step = std::uint64_t{1} << i;
  double tile[kMarginalTile];
  double acc = 0.0;
  std::uint64_t u = 0;
  while (u < half) {
    // Runs are whole multiples of the tile here (step >= 4 and the tile
    // divides step or vice versa), but clip generically anyway.
    const std::uint64_t run_end = std::min(half, ((u >> i) + 1) << i);
    const double* lo = v + lo_of_pair(u, i);
    const double* hi = lo + step;
    std::uint64_t off = 0;
    const std::uint64_t run_len = run_end - u;
    while (off < run_len) {
      const std::uint64_t len = std::min(kMarginalTile, run_len - off);
      marginal_tile(hi + off, lo + off,
                    wvec != nullptr ? wvec + u + off : nullptr, scale, tile,
                    len, vec);
      // Strict ascending accumulation: the scalar loop's exact order.
      for (std::uint64_t j = 0; j < len; ++j) acc += tile[j];
      off += len;
    }
    u = run_end;
  }
  return acc;
}

}  // namespace fedshare::game::simd
