// The core of a TU game (Sec. 3.2.1 of the paper) and the least-core LP.
//
// C = { v : sum_N v_i = V(N), sum_S v_i >= V(S) for all S }. Emptiness is
// decided via the least-core linear program: minimise epsilon subject to
// x(S) >= V(S) - epsilon; the core is non-empty iff epsilon* <= 0.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

/// Result of the least-core LP.
struct LeastCoreResult {
  bool solved = false;            ///< LP solved to optimality
  double epsilon = 0.0;           ///< minimal uniform excess bound
  std::vector<double> allocation; ///< an optimal allocation x
};

/// Solves the least-core LP. Requires 1 <= n <= 12 (the LP has 2^n - 2
/// coalition rows).
[[nodiscard]] LeastCoreResult least_core(const Game& game);

/// Variant threading solver options through the LP (engine choice,
/// tolerance, ComputeBudget). With SolverKind::kRevised and a non-null
/// `warm`, the solve starts from *warm when it is non-empty and writes
/// the optimal basis back, so a chain of least-core LPs over related
/// games (demand sweeps, outage scenarios) re-solves in few pivots.
[[nodiscard]] LeastCoreResult least_core(const Game& game,
                                         const lp::SimplexOptions& options,
                                         lp::Basis* warm = nullptr);

/// Whether `allocation` lies in the core of `game`, up to `tolerance`.
/// Checks efficiency (|x(N) - V(N)| <= tolerance) and coalitional
/// rationality for every proper coalition. `allocation` must have one
/// entry per player.
[[nodiscard]] bool in_core(const Game& game,
                           const std::vector<double>& allocation,
                           double tolerance = 1e-6);

/// Whether the core is non-empty (least-core epsilon <= tolerance).
[[nodiscard]] bool core_nonempty(const Game& game, double tolerance = 1e-6);

/// The maximum violation of `allocation` over all proper coalitions:
/// max_S (V(S) - x(S)); <= 0 means the allocation satisfies every
/// coalition. Does not check efficiency.
[[nodiscard]] double max_core_violation(const Game& game,
                                        const std::vector<double>& allocation);

}  // namespace fedshare::game
