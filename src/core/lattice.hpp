// Cache-blocked subset-lattice transform kernels.
//
// Every exact solidarity quantity this library computes — Shapley,
// Banzhaf, Harsanyi dividends — is a linear functional of the value
// table v[0..2^n) over the subset lattice. This module hosts the three
// kernels as O(n * 2^n) passes engineered around two contracts:
//
//  * Bitwise reproducibility. Each kernel performs *exactly* the same
//    floating-point operations in *exactly* the same order as the
//    historical scalar loop it replaces, at any exec thread count:
//      - the zeta/Moebius transforms touch every slot once per bit pass
//        (slot updates are independent within a pass), so scheduling is
//        unobservable;
//      - the Shapley/Banzhaf kernels accumulate each player's sum over
//        masks in ascending mask order in a private slot, which is the
//        accumulation order of the scalar subset formula.
//    tests/test_lattice.cpp pins both claims (kernel vs. inline scalar
//    reference, 1 thread vs. 4 threads, bit-for-bit).
//
//  * Budget charging. The *_budgeted variants charge one unit per
//    coalition slot materialised per pass (2^(n-1) per player pass for
//    the marginal kernels, 2^(n-1) per bit pass for the transforms) and
//    return nullopt when the budget trips — a partial transform is not a
//    meaningful table.
//
// Memory access: a bit pass walks 2^(n-1) (lo, hi) slot pairs where the
// lo index enumerates contiguous blocks of 2^bit slots — two forward
// streams, one read-modify-write, which is the cache-friendly blocked
// layout (the classic mask-conditional loop touches the same pairs but
// hides the streaming structure from the prefetcher). The marginal
// kernels stream the same pair layout per player.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/game.hpp"
#include "runtime/budget.hpp"

namespace fedshare::game {

/// In-place fast zeta transform over the subset lattice:
///   v'[S] = sum_{T subseteq S} v[T].
/// O(n * 2^n); `values` must have exactly 2^num_players entries. Runs
/// bit pass by bit pass through exec::parallel_for; bit-identical at any
/// thread count (each slot is written by exactly one chunk per pass).
void zeta_transform(std::vector<double>& values, int num_players);

/// In-place fast Moebius transform (the inverse of zeta_transform):
///   v'[S] = sum_{T subseteq S} (-1)^(|S|-|T|) v[T].
/// Applied to a value table this yields the Harsanyi dividends.
void moebius_transform(std::vector<double>& values, int num_players);

/// Budgeted transforms: charge one unit per slot pair per bit pass
/// (n * 2^(n-1) total) and return false when the budget trips, leaving
/// `values` in an unspecified partially-transformed state.
[[nodiscard]] bool zeta_transform_budgeted(std::vector<double>& values,
                                           int num_players,
                                           const runtime::ComputeBudget& budget);
[[nodiscard]] bool moebius_transform_budgeted(
    std::vector<double>& values, int num_players,
    const runtime::ComputeBudget& budget);

/// The subset-formula weights w[s] = s! (n-s-1)! / n! for s = 0..n-1,
/// computed in log space (finite up to n = 24). Exposed so tests can
/// reproduce the scalar reference loop with the exact same table.
[[nodiscard]] std::vector<double> shapley_subset_weights(int num_players);

/// Exact Shapley values from a tabulated game via per-player lattice
/// passes. Bitwise-identical to the scalar subset formula
///   phi_i = sum_{S not ni i} w[|S|] (v[S+i] - v[S])
/// accumulated in ascending mask order, and parallel across players.
[[nodiscard]] std::vector<double> shapley_lattice(const TabularGame& tab);

/// Budgeted variant: charges one unit per (player, subset) pair scanned
/// — n * 2^(n-1) units for a complete run — and returns nullopt on a
/// trip (partial per-player sums are meaningless).
[[nodiscard]] std::optional<std::vector<double>> shapley_lattice_budgeted(
    const TabularGame& tab, const runtime::ComputeBudget& budget);

/// Raw Banzhaf values via the same per-player pass layout:
///   beta_i = 2^-(n-1) sum_{S not ni i} (v[S+i] - v[S]),
/// bitwise-identical to the scalar loop, parallel across players.
[[nodiscard]] std::vector<double> banzhaf_lattice(const TabularGame& tab);

/// Harsanyi dividends of a tabulated game: a copy of the value table
/// pushed through moebius_transform. Bitwise-identical to the scalar
/// in-place transform at any thread count.
[[nodiscard]] std::vector<double> dividends_lattice(const TabularGame& tab);

}  // namespace fedshare::game
