#include "core/game.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fedshare::game {

TabularGame::TabularGame(int num_players, std::vector<double> values)
    : num_players_(num_players), values_(std::move(values)) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument("TabularGame: n must be in [0, 24]");
  }
  const std::size_t expected = std::size_t{1} << num_players;
  if (values_.size() != expected) {
    throw std::invalid_argument("TabularGame: need exactly 2^n values");
  }
  if (std::abs(values_[0]) > 1e-12) {
    throw std::invalid_argument("TabularGame: V(empty) must be 0");
  }
}

double TabularGame::value(Coalition coalition) const {
  const std::uint64_t idx = coalition.bits();
  if (idx >= values_.size()) {
    throw std::out_of_range("TabularGame::value: coalition out of range");
  }
  return values_[idx];
}

TabularGame TabularGame::zero_normalized() const {
  std::vector<double> out(values_.size());
  for (std::uint64_t mask = 0; mask < values_.size(); ++mask) {
    double singles = 0.0;
    std::uint64_t b = mask;
    while (b != 0) {
      const int p = __builtin_ctzll(b);
      singles += values_[std::uint64_t{1} << p];
      b &= b - 1;
    }
    out[mask] = values_[mask] - singles;
  }
  return TabularGame(num_players_, std::move(out));
}

FunctionGame::FunctionGame(int num_players, ValueFn fn)
    : num_players_(num_players), fn_(std::move(fn)) {
  if (num_players < 0 || num_players > Coalition::kMaxPlayers) {
    throw std::invalid_argument("FunctionGame: bad player count");
  }
  if (!fn_) {
    throw std::invalid_argument("FunctionGame: null value function");
  }
}

double FunctionGame::value(Coalition coalition) const {
  if (!coalition.is_subset_of(Coalition::grand(num_players_))) {
    throw std::out_of_range("FunctionGame::value: coalition out of range");
  }
  return fn_(coalition);
}

TabularGame tabulate(const Game& game) {
  const int n = game.num_players();
  if (n > 24) {
    throw std::invalid_argument("tabulate: n must be <= 24");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count);
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    values[mask] = game.value(Coalition::from_bits(mask));
  }
  return TabularGame(n, std::move(values));
}

std::optional<TabularGame> tabulate_budgeted(
    const Game& game, const runtime::ComputeBudget& budget) {
  const int n = game.num_players();
  if (n > 24) {
    throw std::invalid_argument("tabulate_budgeted: n must be <= 24");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count);
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    if (!budget.charge()) return std::nullopt;
    values[mask] = game.value(Coalition::from_bits(mask));
  }
  return TabularGame(n, std::move(values));
}

double standalone_total(const Game& game) {
  double total = 0.0;
  for (int i = 0; i < game.num_players(); ++i) {
    total += game.value(Coalition::single(i));
  }
  return total;
}

}  // namespace fedshare::game
