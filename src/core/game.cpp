#include "core/game.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "exec/pool.hpp"

namespace fedshare::game {

namespace {

// Masks per parallel chunk. Model-backed V(S) is an LP solve (µs–ms),
// so small chunks keep the stealing balanced; for trivial function
// games the per-chunk overhead is still negligible next to 2^n calls.
constexpr std::uint64_t kTabulateChunk = 16;

}  // namespace

std::optional<double> Game::value_budgeted(
    Coalition coalition, const runtime::ComputeBudget& budget) const {
  // Every call materialises a fresh value: charge one unit first.
  if (!budget.charge()) return std::nullopt;
  return value(coalition);
}

TabularGame::TabularGame(int num_players, std::vector<double> values)
    : num_players_(num_players), values_(std::move(values)) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument("TabularGame: n must be in [0, 24]");
  }
  const std::size_t expected = std::size_t{1} << num_players;
  if (values_.size() != expected) {
    throw std::invalid_argument("TabularGame: need exactly 2^n values");
  }
  if (std::abs(values_[0]) > 1e-12) {
    throw std::invalid_argument("TabularGame: V(empty) must be 0");
  }
}

double TabularGame::value(Coalition coalition) const {
  const std::uint64_t idx = coalition.bits();
  if (idx >= values_.size()) {
    throw std::out_of_range("TabularGame::value: coalition out of range");
  }
  return values_[idx];
}

std::optional<double> TabularGame::value_budgeted(
    Coalition coalition, const runtime::ComputeBudget& budget) const {
  (void)budget;  // table reads are free under the charging rule
  return value(coalition);
}

TabularGame TabularGame::zero_normalized() const {
  std::vector<double> out(values_.size());
  for (std::uint64_t mask = 0; mask < values_.size(); ++mask) {
    double singles = 0.0;
    std::uint64_t b = mask;
    while (b != 0) {
      const int p = __builtin_ctzll(b);
      singles += values_[std::uint64_t{1} << p];
      b &= b - 1;
    }
    out[mask] = values_[mask] - singles;
  }
  return TabularGame(num_players_, std::move(out));
}

FunctionGame::FunctionGame(int num_players, ValueFn fn)
    : num_players_(num_players), fn_(std::move(fn)) {
  if (num_players < 0 || num_players > Coalition::kMaxPlayers) {
    throw std::invalid_argument("FunctionGame: bad player count");
  }
  if (!fn_) {
    throw std::invalid_argument("FunctionGame: null value function");
  }
}

double FunctionGame::value(Coalition coalition) const {
  if (!coalition.is_subset_of(Coalition::grand(num_players_))) {
    throw std::out_of_range("FunctionGame::value: coalition out of range");
  }
  return fn_(coalition);
}

CachedGame::CachedGame(const Game& base, exec::ValueCache& cache)
    : base_(&base), cache_(&cache) {}

int CachedGame::num_players() const { return base_->num_players(); }

double CachedGame::value(Coalition coalition) const {
  return cache_->value_or_compute(
      coalition.bits(), [&] { return base_->value(coalition); });
}

std::optional<double> CachedGame::value_budgeted(
    Coalition coalition, const runtime::ComputeBudget& budget) const {
  return cache_->value_or_compute_budgeted(
      coalition.bits(), budget, [&] { return base_->value(coalition); });
}

TabularGame tabulate(const Game& game) {
  const int n = game.num_players();
  if (n > 24) {
    throw std::invalid_argument("tabulate: n must be <= 24");
  }
  if (const auto* tab = dynamic_cast<const TabularGame*>(&game)) {
    return *tab;  // already materialised: copy the table
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count);
  // Each mask writes its own slot, so the parallel schedule is
  // bit-identical to the serial loop at any thread count.
  exec::parallel_for(0, count, kTabulateChunk,
                     [&](const exec::ChunkRange& r) {
                       for (std::uint64_t mask = r.begin; mask < r.end;
                            ++mask) {
                         values[mask] =
                             game.value(Coalition::from_bits(mask));
                       }
                       return true;
                     });
  return TabularGame(n, std::move(values));
}

std::optional<TabularGame> tabulate_budgeted(
    const Game& game, const runtime::ComputeBudget& budget) {
  const int n = game.num_players();
  if (n > 24) {
    throw std::invalid_argument("tabulate_budgeted: n must be <= 24");
  }
  if (const auto* tab = dynamic_cast<const TabularGame*>(&game)) {
    return *tab;  // re-reads are free under the charging rule
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count);
  const bool ok = exec::parallel_for_budgeted(
      0, count, kTabulateChunk, budget,
      [&](const exec::ChunkRange& r, const runtime::ComputeBudget& b) {
        for (std::uint64_t mask = r.begin; mask < r.end; ++mask) {
          const auto v = game.value_budgeted(Coalition::from_bits(mask), b);
          if (!v) return false;
          values[mask] = *v;
        }
        return true;
      });
  if (!ok) return std::nullopt;
  return TabularGame(n, std::move(values));
}

double standalone_total(const Game& game) {
  double total = 0.0;
  for (int i = 0; i < game.num_players(); ++i) {
    total += game.value(Coalition::single(i));
  }
  return total;
}

}  // namespace fedshare::game
