#include "core/dividends.hpp"

#include <stdexcept>

#include "core/lattice.hpp"

namespace fedshare::game {

std::vector<double> harsanyi_dividends(const Game& game) {
  const int n = game.num_players();
  if (n > 24) {
    throw std::invalid_argument("harsanyi_dividends: n must be <= 24");
  }
  // Fast Moebius transform via the cache-blocked lattice kernel; each
  // slot is updated once per bit pass, so the result is bitwise
  // identical to the old serial mask-conditional loop.
  return dividends_lattice(tabulate(game));
}

TabularGame game_from_dividends(int num_players,
                                const std::vector<double>& dividends) {
  if (num_players < 0 || num_players > 24) {
    throw std::invalid_argument("game_from_dividends: n must be in [0, 24]");
  }
  const std::uint64_t count = std::uint64_t{1} << num_players;
  if (dividends.size() != count) {
    throw std::invalid_argument(
        "game_from_dividends: need exactly 2^n dividends");
  }
  std::vector<double> v = dividends;
  // Fast zeta transform (inverse of the Moebius transform).
  zeta_transform(v, num_players);
  return TabularGame(num_players, std::move(v));
}

std::vector<double> shapley_from_dividends(const Game& game) {
  const int n = game.num_players();
  const std::vector<double> d = harsanyi_dividends(game);
  std::vector<double> phi(static_cast<std::size_t>(n), 0.0);
  for (std::uint64_t mask = 1; mask < d.size(); ++mask) {
    const double share =
        d[mask] / static_cast<double>(__builtin_popcountll(mask));
    std::uint64_t b = mask;
    while (b != 0) {
      phi[static_cast<std::size_t>(__builtin_ctzll(b))] += share;
      b &= b - 1;
    }
  }
  return phi;
}

std::vector<std::vector<double>> interaction_index(const Game& game) {
  const int n = game.num_players();
  if (n > 20) {
    throw std::invalid_argument("interaction_index: n must be <= 20");
  }
  const std::vector<double> d = harsanyi_dividends(game);
  const auto nn = static_cast<std::size_t>(n);
  std::vector<std::vector<double>> index(nn, std::vector<double>(nn, 0.0));
  for (std::uint64_t mask = 1; mask < d.size(); ++mask) {
    const int size = __builtin_popcountll(mask);
    if (size < 2 || d[mask] == 0.0) continue;
    const double share = d[mask] / static_cast<double>(size - 1);
    // Add to every pair inside the coalition.
    std::vector<int> members;
    std::uint64_t b = mask;
    while (b != 0) {
      members.push_back(__builtin_ctzll(b));
      b &= b - 1;
    }
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t c = a + 1; c < members.size(); ++c) {
        const auto i = static_cast<std::size_t>(members[a]);
        const auto j = static_cast<std::size_t>(members[c]);
        index[i][j] += share;
        index[j][i] += share;
      }
    }
  }
  return index;
}

}  // namespace fedshare::game
