// Harsanyi dividends and the Shapley interaction index.
//
// Every TU game decomposes uniquely over the unanimity basis:
// V = sum_S d_S * u_S with dividends d_S given by the Moebius transform
// of V. The dividends localise synergy — d_S != 0 means coalition S
// carries value that no sub-coalition explains — and yield:
//   * the Shapley value, phi_i = sum_{S ni i} d_S / |S| (an independent
//     cross-check of the marginal-contribution engine), and
//   * the pairwise Shapley interaction index,
//     I_ij = sum_{S containing i,j} d_S / (|S| - 1),
//     positive when i and j are complements, negative for substitutes —
//     the precise sense in which the paper's diversity thresholds make
//     facilities complementary.
#pragma once

#include <vector>

#include "core/game.hpp"

namespace fedshare::game {

/// Harsanyi dividends indexed by coalition bitmask (d of the empty set
/// is 0). Computed by the fast Moebius transform, O(n * 2^n).
/// Requires n <= 24.
[[nodiscard]] std::vector<double> harsanyi_dividends(const Game& game);

/// Reconstructs V from dividends (inverse/zeta transform); used by the
/// round-trip tests. `dividends` must have 2^n entries.
[[nodiscard]] TabularGame game_from_dividends(
    int num_players, const std::vector<double>& dividends);

/// Shapley values from dividends: phi_i = sum_{S ni i} d_S / |S|.
[[nodiscard]] std::vector<double> shapley_from_dividends(const Game& game);

/// Pairwise Shapley interaction matrix: entry (i, j) is I_ij for i != j,
/// 0 on the diagonal. Symmetric. Requires n <= 20.
[[nodiscard]] std::vector<std::vector<double>> interaction_index(
    const Game& game);

}  // namespace fedshare::game
