#include "core/banzhaf.hpp"

#include <stdexcept>

#include "core/lattice.hpp"
#include "core/shapley.hpp"

namespace fedshare::game {

std::vector<double> banzhaf_raw(const Game& game) {
  const int n = game.num_players();
  if (n < 1 || n > 24) {
    throw std::invalid_argument("banzhaf_raw: n must be in [1, 24]");
  }
  // Lattice kernel: per-player passes in ascending mask order, which is
  // the scalar loop's accumulation sequence — bitwise-neutral rewire.
  return banzhaf_lattice(tabulate(game));
}

std::vector<double> banzhaf_index(const Game& game) {
  return normalize_shares(banzhaf_raw(game));
}

}  // namespace fedshare::game
