#include "core/banzhaf.hpp"

#include <stdexcept>

#include "core/shapley.hpp"

namespace fedshare::game {

std::vector<double> banzhaf_raw(const Game& game) {
  const int n = game.num_players();
  if (n < 1 || n > 24) {
    throw std::invalid_argument("banzhaf_raw: n must be in [1, 24]");
  }
  const TabularGame tab = tabulate(game);
  const std::vector<double>& v = tab.values();
  const double scale = 1.0 / static_cast<double>(std::uint64_t{1} << (n - 1));
  std::vector<double> beta(static_cast<std::size_t>(n), 0.0);
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < count; ++mask) {
    const double base = v[mask];
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      beta[static_cast<std::size_t>(i)] +=
          scale * (v[mask | (std::uint64_t{1} << i)] - base);
    }
  }
  return beta;
}

std::vector<double> banzhaf_index(const Game& game) {
  return normalize_shares(banzhaf_raw(game));
}

}  // namespace fedshare::game
