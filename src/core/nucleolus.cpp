#include "core/nucleolus.hpp"

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "lp/batch_solver.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

namespace {

constexpr double kTol = 1e-7;

// Dense formulation ceiling: 2^10 - 2 excess rows. Past this the LPs
// are refused with a pointer at the orbit-row formulation.
constexpr std::uint64_t kMaxDenseRows = (std::uint64_t{1} << 10) - 2;
// Orbit-row formulation ceiling. Generous: typed federations with n in
// the 20s sit at a few thousand orbit rows.
constexpr std::uint64_t kMaxOrbitRows = std::uint64_t{1} << 15;

// Warm-started chain over LPs that share one constraint set and differ
// only in objective (the per-coalition aux-max probes and the per-player
// uniqueness probes of a round). The previous optimum stays primal
// feasible when only the objective moves, so each re-solve is a pure
// phase-2 run from the last basis. Revised engine only.
class ObjectiveChain {
 public:
  ObjectiveChain(const lp::Problem& prob, const lp::SimplexOptions& options)
      : solver_(lp::RevisedSimplex(prob, options)) {}

  // From an already-built (and possibly row-patched) engine, seeded with
  // the basis a previous chain over the same rows ended on — the
  // round-to-round warm start of the orbit-row probe chains.
  ObjectiveChain(const lp::RevisedSimplex& engine, lp::Basis basis)
      : solver_(engine), basis_(std::move(basis)) {}

  // Replaces the whole objective vector and re-solves warm. Routed
  // through lp::BatchSolver::solve_objective, so consecutive zero-pivot
  // probes reuse the previous factorization and FTRAN'd basic values
  // instead of rebuilding both per probe — the Solutions are bitwise
  // what per-probe solve_from_basis calls would return.
  [[nodiscard]] lp::Solution solve(const std::vector<double>& objective) {
    lp::Basis next;
    lp::Solution sol = solver_.solve_objective(objective, basis_, &next);
    if (sol.optimal()) basis_ = std::move(next);
    return sol;
  }

  [[nodiscard]] const lp::Basis& basis() const noexcept { return basis_; }

 private:
  lp::BatchSolver solver_;
  lp::Basis basis_;
};

// Shared LP scaffolding for one round of the scheme. Variables are
// x_0..x_{n-1} and epsilon (all free). `fixed` holds (mask, rhs) pairs
// meaning x(S) == rhs; `active` holds masks with x(S) + eps >= V(S).
struct RoundContext {
  int n = 0;
  double grand_value = 0.0;
  const std::vector<double>* values = nullptr;
  std::vector<std::pair<std::uint64_t, double>> fixed;
  std::vector<std::uint64_t> active;
  // One scratch row reused across every add_constraint call: assign()
  // recycles the capacity, so the 2^n-row rebuilds stop allocating one
  // vector per coalition.
  mutable std::vector<double> row_scratch;

  [[nodiscard]] lp::Problem base_problem() const {
    const auto nv = static_cast<std::size_t>(n);
    lp::Problem prob(nv + 1, lp::Objective::kMinimize);
    for (std::size_t i = 0; i <= nv; ++i) prob.set_free(i);

    std::vector<double> eff(nv + 1, 0.0);
    for (std::size_t i = 0; i < nv; ++i) eff[i] = 1.0;
    prob.add_constraint(std::move(eff), lp::Relation::kEqual, grand_value);

    for (const auto& [mask, rhs] : fixed) {
      prob.add_constraint(row_for(mask, 0.0), lp::Relation::kEqual, rhs);
    }
    for (const std::uint64_t mask : active) {
      prob.add_constraint(row_for(mask, 1.0), lp::Relation::kGreaterEqual,
                          (*values)[mask]);
    }
    return prob;
  }

  [[nodiscard]] const std::vector<double>& row_for(std::uint64_t mask,
                                                   double eps_coeff) const {
    row_scratch.assign(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) row_scratch[static_cast<std::size_t>(i)] = 1.0;
    }
    row_scratch[static_cast<std::size_t>(n)] = eps_coeff;
    return row_scratch;
  }
};

}  // namespace

NucleolusResult nucleolus(const Game& game) {
  return nucleolus(game, lp::SimplexOptions{});
}

NucleolusResult nucleolus(const Game& game,
                          const lp::SimplexOptions& options) {
  const int n = game.num_players();
  if (n < 1) {
    throw std::invalid_argument("nucleolus: need at least one player");
  }
  // Row-count guard, not a player-count guard: the dense formulation
  // carries one excess row per proper coalition.
  if (n > 63 ||
      (std::uint64_t{1} << n) - 2 > kMaxDenseRows) {
    throw std::invalid_argument(
        "nucleolus: dense formulation needs 2^" + std::to_string(n) +
        " - 2 excess rows per probe LP (max " +
        std::to_string(kMaxDenseRows) +
        "); run the orbit-row quotient formulation instead "
        "(--symmetry auto/exact, nucleolus_quotient)");
  }
  NucleolusResult out;
  if (n == 1) {
    out.solved = true;
    out.allocation = {game.grand_value()};
    return out;
  }

  const TabularGame tab = tabulate(game);
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  RoundContext ctx;
  ctx.n = n;
  ctx.grand_value = tab.values()[grand];
  ctx.values = &tab.values();
  ctx.active.reserve(grand - 1);
  for (std::uint64_t mask = 1; mask < grand; ++mask) ctx.active.push_back(mask);
  out.excess_rows = grand - 1;

  const auto nv = static_cast<std::size_t>(n);
  std::vector<double> allocation;
  const bool revised = options.solver == lp::SolverKind::kRevised;
  // Round-to-round warm start: the variables never change across rounds
  // (only the row set does), so the previous round's structural statuses
  // seed the next round's basis through the crash path.
  lp::Basis round_basis;

  // Each round fixes at least one coalition, so at most 2^n rounds; in
  // practice the allocation becomes unique after <= n-1 rounds.
  while (!ctx.active.empty()) {
    // 1. Least-core step over the remaining coalitions.
    lp::Problem prob = ctx.base_problem();
    prob.set_objective_coefficient(nv, 1.0);
    lp::Solution sol;
    if (revised) {
      lp::RevisedSimplex engine(prob, options);
      sol = engine.solve_from_basis(round_basis);
      if (sol.optimal()) round_basis = engine.basis();
    } else {
      sol = lp::solve(prob, options);
    }
    ++out.lps_solved;
    out.pivots += sol.pivots;
    if (!sol.optimal()) return out;
    const double eps = sol.x[nv];
    out.levels.push_back(eps);
    allocation.assign(sol.x.begin(), sol.x.begin() + n);

    // 2. A coalition is permanently tight iff x(S) cannot exceed
    //    V(S) - eps in any optimal solution. Test by maximizing x(S)
    //    with eps pinned to the optimum.
    std::vector<std::uint64_t> still_active;
    bool fixed_any = false;
    const lp::Problem base = ctx.base_problem();
    // All aux-max probes of a round share one constraint set (base rows
    // plus eps pinned at the optimum); with the revised engine they run
    // as a warm-started objective chain over a single instance.
    std::optional<ObjectiveChain> aux_chain;
    if (revised) {
      lp::Problem aux(nv + 1, lp::Objective::kMaximize);
      for (std::size_t i = 0; i <= nv; ++i) aux.set_free(i);
      for (const auto& c : base.constraints()) {
        aux.add_constraint(c.coefficients, c.relation, c.rhs);
      }
      std::vector<double> pin(nv + 1, 0.0);
      pin[nv] = 1.0;
      aux.add_constraint(std::move(pin), lp::Relation::kEqual, eps);
      aux_chain.emplace(aux, options);
    }
    for (const std::uint64_t mask : ctx.active) {
      lp::Solution aux_sol;
      if (revised) {
        std::vector<double> obj(nv + 1, 0.0);
        for (int i = 0; i < n; ++i) {
          if ((mask >> i) & 1u) obj[static_cast<std::size_t>(i)] = 1.0;
        }
        aux_sol = aux_chain->solve(obj);
      } else {
        lp::Problem aux_max(nv + 1, lp::Objective::kMaximize);
        for (std::size_t i = 0; i <= nv; ++i) aux_max.set_free(i);
        for (int i = 0; i < n; ++i) {
          if ((mask >> i) & 1u) {
            aux_max.set_objective_coefficient(static_cast<std::size_t>(i),
                                              1.0);
          }
        }
        for (const auto& c : base.constraints()) {
          aux_max.add_constraint(c.coefficients, c.relation, c.rhs);
        }
        std::vector<double> pin(nv + 1, 0.0);
        pin[nv] = 1.0;
        aux_max.add_constraint(std::move(pin), lp::Relation::kEqual, eps);
        aux_sol = lp::solve(aux_max, options);
      }
      ++out.lps_solved;
      out.pivots += aux_sol.pivots;
      if (!aux_sol.optimal()) return out;
      const double max_xs = aux_sol.objective;
      const double bound = tab.values()[mask] - eps;
      if (max_xs <= bound + kTol) {
        ctx.fixed.emplace_back(mask, bound);
        fixed_any = true;
      } else {
        still_active.push_back(mask);
      }
    }
    ctx.active = std::move(still_active);
    if (!fixed_any) break;  // numerically stuck; current allocation stands

    // 3. Stop early once the allocation is pinned down: every player's
    //    payoff range under the fixed constraints is a point.
    if (!ctx.active.empty()) {
      bool unique = true;
      // The probes again share one constraint set; the revised chain
      // maximizes +x_i / -x_i per player (min x_i == -max -x_i), so all
      // 2n probes warm-start off each other.
      std::optional<ObjectiveChain> probe_chain;
      if (revised) {
        lp::Problem p(nv + 1, lp::Objective::kMaximize);
        for (std::size_t v2 = 0; v2 <= nv; ++v2) p.set_free(v2);
        const lp::Problem base2 = ctx.base_problem();
        for (const auto& c : base2.constraints()) {
          p.add_constraint(c.coefficients, c.relation, c.rhs);
        }
        std::vector<double> pin_eps(nv + 1, 0.0);
        pin_eps[nv] = 1.0;
        p.add_constraint(std::move(pin_eps), lp::Relation::kEqual, eps);
        probe_chain.emplace(p, options);
      }
      for (int i = 0; i < n && unique; ++i) {
        double extremes[2];
        for (int dir = 0; dir < 2; ++dir) {
          lp::Solution s2;
          if (revised) {
            std::vector<double> obj(nv + 1, 0.0);
            obj[static_cast<std::size_t>(i)] = dir == 0 ? -1.0 : 1.0;
            s2 = probe_chain->solve(obj);
            if (s2.optimal() && dir == 0) s2.objective = -s2.objective;
          } else {
            lp::Problem p(nv + 1, dir == 0 ? lp::Objective::kMinimize
                                           : lp::Objective::kMaximize);
            for (std::size_t v2 = 0; v2 <= nv; ++v2) p.set_free(v2);
            p.set_objective_coefficient(static_cast<std::size_t>(i), 1.0);
            const lp::Problem base2 = ctx.base_problem();
            for (const auto& c : base2.constraints()) {
              p.add_constraint(c.coefficients, c.relation, c.rhs);
            }
            // Pin eps at the current level: the later rounds only shrink
            // the feasible set, so a unique x-projection here is final.
            std::vector<double> pin_eps(nv + 1, 0.0);
            pin_eps[nv] = 1.0;
            p.add_constraint(std::move(pin_eps), lp::Relation::kEqual, eps);
            s2 = lp::solve(p, options);
          }
          ++out.lps_solved;
          out.pivots += s2.pivots;
          if (!s2.optimal()) {
            unique = false;
            extremes[dir] = 0.0;
            break;
          }
          extremes[dir] = s2.objective;
        }
        if (unique && extremes[1] - extremes[0] > kTol) unique = false;
      }
      if (unique) break;
    }
  }

  out.solved = true;
  out.allocation = std::move(allocation);
  return out;
}

// --- Orbit-row formulation -------------------------------------------------
//
// Variables are per-type shares x_0..x_{T-1} plus eps, all free. The
// efficiency row reads sum_t m_t * x_t == V(N); the excess row of a
// proper orbit c reads sum_t c_t * x_t + eps >= V(c), the multiplicity
// weights c_t standing in for the prod_t C(m_t, c_t) identical mask
// rows it replaces. Correctness of running the scheme on orbit rows:
// (a) the nucleolus of a symmetric game is a symmetric allocation, so
// restricting to the symmetric subspace (x_i = x_{type(i)}) keeps the
// true optimum feasible at every round; (b) within that subspace all
// masks of an orbit carry the same excess, so the lexicographic
// minimisation over orbit excesses equals the one over mask excesses —
// duplicating an entry of a multiset does not change which vector
// lexicographically dominates; (c) the iterative fix-tight-in-every-
// optimum scheme computes the lexicographic minimiser on any polytope,
// independently of how many identical rows each constraint represents.
NucleolusResult nucleolus_quotient(const QuotientGame& game,
                                   const lp::SimplexOptions& options) {
  const OrbitIndex& index = game.orbits();
  const PlayerPartition& part = index.partition();
  const int T = index.num_types();
  const std::uint64_t orbits = index.orbit_count();
  if (orbits < 2) {
    throw std::invalid_argument("nucleolus_quotient: need at least one player");
  }
  const std::uint64_t rows = orbits - 2;
  if (rows > kMaxOrbitRows) {
    throw std::invalid_argument(
        "nucleolus_quotient: " + std::to_string(rows) +
        " orbit rows exceed the " + std::to_string(kMaxOrbitRows) +
        "-row ceiling; coarsen the type partition");
  }

  NucleolusResult out;
  out.excess_rows = rows;

  // Orbit values, budget-degradable: with a ComputeBudget attached each
  // orbit materialisation charges one unit, and a trip surfaces as
  // solved == false for the caller's fallback cascade.
  std::vector<double> values;
  if (options.budget != nullptr) {
    auto budgeted = game.orbit_values_budgeted(*options.budget);
    if (!budgeted.has_value()) return out;
    values = std::move(*budgeted);
  } else {
    values = game.orbit_values();
  }
  const double grand_value = values[static_cast<std::size_t>(orbits - 1)];

  if (game.num_players() == 1) {
    out.solved = true;
    out.allocation = {grand_value};
    return out;
  }

  const auto tv = static_cast<std::size_t>(T);  // eps lives at index tv
  const bool revised = options.solver == lp::SolverKind::kRevised;

  // Proper orbits in ascending id order; the excess row of proper orbit
  // #k is constraint 1 + k in both problems (row 0 is efficiency), and
  // the probe problem appends the eps-pin row last.
  std::vector<std::uint64_t> proper;
  proper.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t o = 1; o + 1 < orbits; ++o) proper.push_back(o);
  std::vector<char> active(proper.size(), 1);

  std::vector<int> counts;
  std::vector<double> row;
  const auto fill_row = [&](std::uint64_t orbit, double eps_coeff) {
    index.counts_into(orbit, counts);
    row.assign(tv + 1, 0.0);
    for (int t = 0; t < T; ++t) {
      row[static_cast<std::size_t>(t)] =
          static_cast<double>(counts[static_cast<std::size_t>(t)]);
    }
    row[tv] = eps_coeff;
  };

  // Both LPs are built once; tight-orbit fixing between rounds patches
  // only the row set (relation flip, eps coefficient dropped, rhs),
  // in place, on the problems and the persistent revised engines.
  lp::Problem round_prob(tv + 1, lp::Objective::kMinimize);
  lp::Problem probe_prob(tv + 1, lp::Objective::kMaximize);
  for (std::size_t v = 0; v <= tv; ++v) {
    round_prob.set_free(v);
    probe_prob.set_free(v);
  }
  {
    std::vector<double> eff(tv + 1, 0.0);
    for (int t = 0; t < T; ++t) {
      eff[static_cast<std::size_t>(t)] =
          static_cast<double>(part.multiplicity(t));
    }
    round_prob.add_constraint(eff, lp::Relation::kEqual, grand_value);
    probe_prob.add_constraint(std::move(eff), lp::Relation::kEqual,
                              grand_value);
  }
  for (const std::uint64_t o : proper) {
    fill_row(o, 1.0);
    round_prob.add_constraint(row, lp::Relation::kGreaterEqual,
                              values[static_cast<std::size_t>(o)]);
    probe_prob.add_constraint(row, lp::Relation::kGreaterEqual,
                              values[static_cast<std::size_t>(o)]);
  }
  round_prob.set_objective_coefficient(tv, 1.0);
  const std::size_t pin_row = 1 + proper.size();
  {
    std::vector<double> pin(tv + 1, 0.0);
    pin[tv] = 1.0;
    probe_prob.add_constraint(std::move(pin), lp::Relation::kEqual, 0.0);
  }

  std::optional<lp::RevisedSimplex> round_engine;
  std::optional<lp::RevisedSimplex> probe_engine;
  if (revised) {
    round_engine.emplace(round_prob, options);
    probe_engine.emplace(probe_prob, options);
  }

  lp::Basis round_basis;
  lp::Basis probe_basis;
  std::vector<double> per_type;
  std::vector<double> obj;
  std::size_t num_active = proper.size();

  while (num_active > 0) {
    // 1. Least-core step over the remaining orbit rows, warm from the
    //    previous round's basis (the row set changed, but prepare()
    //    re-derives the computational form per solve).
    lp::Solution sol;
    if (revised) {
      sol = round_engine->solve_from_basis(round_basis);
      if (sol.optimal()) round_basis = round_engine->basis();
    } else {
      sol = lp::solve(round_prob, options);
    }
    ++out.lps_solved;
    out.pivots += sol.pivots;
    if (!sol.optimal()) return out;
    const double eps = sol.x[tv];
    out.levels.push_back(eps);
    per_type.assign(sol.x.begin(), sol.x.begin() + T);

    // 2. Aux-max probes with eps pinned at the optimum: orbit o stays
    //    active iff some optimal solution pushes x(o) above V(o) - eps.
    //    All probes of the round run against the same pre-fix row set
    //    (fixes are collected and applied after the loop), chained warm
    //    through one BatchSolver frame.
    if (revised) {
      probe_engine->set_constraint_rhs(pin_row, eps);
    } else {
      probe_prob.set_constraint_rhs(pin_row, eps);
    }
    std::optional<ObjectiveChain> chain;
    if (revised) chain.emplace(*probe_engine, std::move(probe_basis));
    std::vector<std::pair<std::size_t, double>> newly_fixed;
    for (std::size_t k = 0; k < proper.size(); ++k) {
      if (!active[k]) continue;
      const std::uint64_t o = proper[k];
      fill_row(o, 0.0);
      lp::Solution aux_sol;
      if (revised) {
        aux_sol = chain->solve(row);
      } else {
        for (std::size_t v = 0; v <= tv; ++v) {
          probe_prob.set_objective_coefficient(v, row[v]);
        }
        aux_sol = lp::solve(probe_prob, options);
      }
      ++out.lps_solved;
      out.pivots += aux_sol.pivots;
      if (!aux_sol.optimal()) return out;
      const double bound = values[static_cast<std::size_t>(o)] - eps;
      if (aux_sol.objective <= bound + kTol) {
        newly_fixed.emplace_back(k, bound);
      }
    }
    if (revised) probe_basis = chain->basis();
    if (newly_fixed.empty()) break;  // numerically stuck; answer stands

    // Row-set patch: each tight orbit's row becomes an equality pinned
    // at V(o) - eps_r with the eps column dropped, in place.
    for (const auto& [k, bound] : newly_fixed) {
      fill_row(proper[k], 0.0);
      const std::size_t cidx = 1 + k;
      round_prob.set_constraint(cidx, row, lp::Relation::kEqual, bound);
      probe_prob.set_constraint(cidx, row, lp::Relation::kEqual, bound);
      if (revised) {
        round_engine->set_constraint(cidx, row, lp::Relation::kEqual, bound);
        probe_engine->set_constraint(cidx, row, lp::Relation::kEqual, bound);
      }
      active[k] = 0;
      --num_active;
    }

    // 3. Uniqueness probes on the patched rows (eps still pinned):
    //    2T probes instead of 2n — one +/- pair per type.
    if (num_active > 0) {
      bool unique = true;
      std::optional<ObjectiveChain> probe_chain;
      if (revised) {
        probe_chain.emplace(*probe_engine, std::move(probe_basis));
      }
      for (int t = 0; t < T && unique; ++t) {
        double extremes[2];
        for (int dir = 0; dir < 2; ++dir) {
          obj.assign(tv + 1, 0.0);
          obj[static_cast<std::size_t>(t)] = dir == 0 ? -1.0 : 1.0;
          lp::Solution s2;
          if (revised) {
            s2 = probe_chain->solve(obj);
          } else {
            for (std::size_t v = 0; v <= tv; ++v) {
              probe_prob.set_objective_coefficient(v, obj[v]);
            }
            s2 = lp::solve(probe_prob, options);
          }
          ++out.lps_solved;
          out.pivots += s2.pivots;
          if (!s2.optimal()) {
            unique = false;
            extremes[dir] = 0.0;
            break;
          }
          extremes[dir] = dir == 0 ? -s2.objective : s2.objective;
        }
        if (unique && extremes[1] - extremes[0] > kTol) unique = false;
      }
      if (revised) probe_basis = probe_chain->basis();
      if (unique) break;
    }
  }

  out.solved = true;
  out.allocation = expand_type_values(part, per_type);
  return out;
}

NucleolusResult nucleolus(const Game& game, const PlayerPartition& partition,
                          const lp::SimplexOptions& options) {
  if (partition.is_trivial()) return nucleolus(game, options);
  const QuotientGame quotient(game, partition);
  return nucleolus_quotient(quotient, options);
}

}  // namespace fedshare::game
