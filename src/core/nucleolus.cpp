#include "core/nucleolus.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "lp/simplex.hpp"

namespace fedshare::game {

namespace {

constexpr double kTol = 1e-7;

// Shared LP scaffolding for one round of the scheme. Variables are
// x_0..x_{n-1} and epsilon (all free). `fixed` holds (mask, rhs) pairs
// meaning x(S) == rhs; `active` holds masks with x(S) + eps >= V(S).
struct RoundContext {
  int n = 0;
  double grand_value = 0.0;
  const std::vector<double>* values = nullptr;
  std::vector<std::pair<std::uint64_t, double>> fixed;
  std::vector<std::uint64_t> active;

  [[nodiscard]] lp::Problem base_problem() const {
    const auto nv = static_cast<std::size_t>(n);
    lp::Problem prob(nv + 1, lp::Objective::kMinimize);
    for (std::size_t i = 0; i <= nv; ++i) prob.set_free(i);

    std::vector<double> eff(nv + 1, 0.0);
    for (std::size_t i = 0; i < nv; ++i) eff[i] = 1.0;
    prob.add_constraint(std::move(eff), lp::Relation::kEqual, grand_value);

    for (const auto& [mask, rhs] : fixed) {
      prob.add_constraint(row_for(mask, 0.0), lp::Relation::kEqual, rhs);
    }
    for (const std::uint64_t mask : active) {
      prob.add_constraint(row_for(mask, 1.0), lp::Relation::kGreaterEqual,
                          (*values)[mask]);
    }
    return prob;
  }

  [[nodiscard]] std::vector<double> row_for(std::uint64_t mask,
                                            double eps_coeff) const {
    std::vector<double> row(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) row[static_cast<std::size_t>(i)] = 1.0;
    }
    row[static_cast<std::size_t>(n)] = eps_coeff;
    return row;
  }
};

}  // namespace

NucleolusResult nucleolus(const Game& game) {
  return nucleolus(game, lp::SimplexOptions{});
}

NucleolusResult nucleolus(const Game& game,
                          const lp::SimplexOptions& options) {
  const int n = game.num_players();
  if (n < 1 || n > 10) {
    throw std::invalid_argument("nucleolus: n must be in [1, 10]");
  }
  NucleolusResult out;
  if (n == 1) {
    out.solved = true;
    out.allocation = {game.grand_value()};
    return out;
  }

  const TabularGame tab = tabulate(game);
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  RoundContext ctx;
  ctx.n = n;
  ctx.grand_value = tab.values()[grand];
  ctx.values = &tab.values();
  ctx.active.reserve(grand - 1);
  for (std::uint64_t mask = 1; mask < grand; ++mask) ctx.active.push_back(mask);

  const auto nv = static_cast<std::size_t>(n);
  std::vector<double> allocation;

  // Each round fixes at least one coalition, so at most 2^n rounds; in
  // practice the allocation becomes unique after <= n-1 rounds.
  while (!ctx.active.empty()) {
    // 1. Least-core step over the remaining coalitions.
    lp::Problem prob = ctx.base_problem();
    prob.set_objective_coefficient(nv, 1.0);
    const lp::Solution sol = lp::solve(prob, options);
    if (!sol.optimal()) return out;
    const double eps = sol.x[nv];
    out.levels.push_back(eps);
    allocation.assign(sol.x.begin(), sol.x.begin() + n);

    // 2. A coalition is permanently tight iff x(S) cannot exceed
    //    V(S) - eps in any optimal solution. Test by maximizing x(S)
    //    with eps pinned to the optimum.
    std::vector<std::uint64_t> still_active;
    bool fixed_any = false;
    const lp::Problem base = ctx.base_problem();
    for (const std::uint64_t mask : ctx.active) {
      lp::Problem aux_max(nv + 1, lp::Objective::kMaximize);
      for (std::size_t i = 0; i <= nv; ++i) aux_max.set_free(i);
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1u) {
          aux_max.set_objective_coefficient(static_cast<std::size_t>(i), 1.0);
        }
      }
      for (const auto& c : base.constraints()) {
        aux_max.add_constraint(c.coefficients, c.relation, c.rhs);
      }
      std::vector<double> pin(nv + 1, 0.0);
      pin[nv] = 1.0;
      aux_max.add_constraint(std::move(pin), lp::Relation::kEqual, eps);
      const lp::Solution aux_sol = lp::solve(aux_max, options);
      if (!aux_sol.optimal()) return out;
      const double max_xs = aux_sol.objective;
      const double bound = tab.values()[mask] - eps;
      if (max_xs <= bound + kTol) {
        ctx.fixed.emplace_back(mask, bound);
        fixed_any = true;
      } else {
        still_active.push_back(mask);
      }
    }
    ctx.active = std::move(still_active);
    if (!fixed_any) break;  // numerically stuck; current allocation stands

    // 3. Stop early once the allocation is pinned down: every player's
    //    payoff range under the fixed constraints is a point.
    if (!ctx.active.empty()) {
      bool unique = true;
      for (int i = 0; i < n && unique; ++i) {
        double extremes[2];
        for (int dir = 0; dir < 2; ++dir) {
          lp::Problem p(nv + 1, dir == 0 ? lp::Objective::kMinimize
                                         : lp::Objective::kMaximize);
          for (std::size_t v2 = 0; v2 <= nv; ++v2) p.set_free(v2);
          p.set_objective_coefficient(static_cast<std::size_t>(i), 1.0);
          const lp::Problem base = ctx.base_problem();
          for (const auto& c : base.constraints()) {
            p.add_constraint(c.coefficients, c.relation, c.rhs);
          }
          // Pin eps at the current level: the later rounds only shrink
          // the feasible set, so a unique x-projection here is final.
          std::vector<double> pin_eps(nv + 1, 0.0);
          pin_eps[nv] = 1.0;
          p.add_constraint(std::move(pin_eps), lp::Relation::kEqual, eps);
          const lp::Solution s2 = lp::solve(p, options);
          if (!s2.optimal()) {
            unique = false;
            extremes[dir] = 0.0;
            break;
          }
          extremes[dir] = s2.objective;
        }
        if (unique && extremes[1] - extremes[0] > kTol) unique = false;
      }
      if (unique) break;
    }
  }

  out.solved = true;
  out.allocation = std::move(allocation);
  return out;
}

}  // namespace fedshare::game
