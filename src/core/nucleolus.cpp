#include "core/nucleolus.hpp"

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "lp/batch_solver.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

namespace {

constexpr double kTol = 1e-7;

// Warm-started chain over LPs that share one constraint set and differ
// only in objective (the per-coalition aux-max probes and the per-player
// uniqueness probes of a round). The previous optimum stays primal
// feasible when only the objective moves, so each re-solve is a pure
// phase-2 run from the last basis. Revised engine only.
class ObjectiveChain {
 public:
  ObjectiveChain(const lp::Problem& prob, const lp::SimplexOptions& options)
      : solver_(lp::RevisedSimplex(prob, options)) {}

  // Replaces the whole objective vector and re-solves warm. Routed
  // through lp::BatchSolver::solve_objective, so consecutive zero-pivot
  // probes reuse the previous factorization and FTRAN'd basic values
  // instead of rebuilding both per probe — the Solutions are bitwise
  // what per-probe solve_from_basis calls would return.
  [[nodiscard]] lp::Solution solve(const std::vector<double>& objective) {
    lp::Basis next;
    lp::Solution sol = solver_.solve_objective(objective, basis_, &next);
    if (sol.optimal()) basis_ = std::move(next);
    return sol;
  }

 private:
  lp::BatchSolver solver_;
  lp::Basis basis_;
};

// Shared LP scaffolding for one round of the scheme. Variables are
// x_0..x_{n-1} and epsilon (all free). `fixed` holds (mask, rhs) pairs
// meaning x(S) == rhs; `active` holds masks with x(S) + eps >= V(S).
struct RoundContext {
  int n = 0;
  double grand_value = 0.0;
  const std::vector<double>* values = nullptr;
  std::vector<std::pair<std::uint64_t, double>> fixed;
  std::vector<std::uint64_t> active;

  [[nodiscard]] lp::Problem base_problem() const {
    const auto nv = static_cast<std::size_t>(n);
    lp::Problem prob(nv + 1, lp::Objective::kMinimize);
    for (std::size_t i = 0; i <= nv; ++i) prob.set_free(i);

    std::vector<double> eff(nv + 1, 0.0);
    for (std::size_t i = 0; i < nv; ++i) eff[i] = 1.0;
    prob.add_constraint(std::move(eff), lp::Relation::kEqual, grand_value);

    for (const auto& [mask, rhs] : fixed) {
      prob.add_constraint(row_for(mask, 0.0), lp::Relation::kEqual, rhs);
    }
    for (const std::uint64_t mask : active) {
      prob.add_constraint(row_for(mask, 1.0), lp::Relation::kGreaterEqual,
                          (*values)[mask]);
    }
    return prob;
  }

  [[nodiscard]] std::vector<double> row_for(std::uint64_t mask,
                                            double eps_coeff) const {
    std::vector<double> row(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) row[static_cast<std::size_t>(i)] = 1.0;
    }
    row[static_cast<std::size_t>(n)] = eps_coeff;
    return row;
  }
};

}  // namespace

NucleolusResult nucleolus(const Game& game) {
  return nucleolus(game, lp::SimplexOptions{});
}

NucleolusResult nucleolus(const Game& game,
                          const lp::SimplexOptions& options) {
  const int n = game.num_players();
  if (n < 1 || n > 10) {
    throw std::invalid_argument("nucleolus: n must be in [1, 10]");
  }
  NucleolusResult out;
  if (n == 1) {
    out.solved = true;
    out.allocation = {game.grand_value()};
    return out;
  }

  const TabularGame tab = tabulate(game);
  const std::uint64_t grand = (std::uint64_t{1} << n) - 1;

  RoundContext ctx;
  ctx.n = n;
  ctx.grand_value = tab.values()[grand];
  ctx.values = &tab.values();
  ctx.active.reserve(grand - 1);
  for (std::uint64_t mask = 1; mask < grand; ++mask) ctx.active.push_back(mask);

  const auto nv = static_cast<std::size_t>(n);
  std::vector<double> allocation;
  const bool revised = options.solver == lp::SolverKind::kRevised;
  // Round-to-round warm start: the variables never change across rounds
  // (only the row set does), so the previous round's structural statuses
  // seed the next round's basis through the crash path.
  lp::Basis round_basis;

  // Each round fixes at least one coalition, so at most 2^n rounds; in
  // practice the allocation becomes unique after <= n-1 rounds.
  while (!ctx.active.empty()) {
    // 1. Least-core step over the remaining coalitions.
    lp::Problem prob = ctx.base_problem();
    prob.set_objective_coefficient(nv, 1.0);
    lp::Solution sol;
    if (revised) {
      lp::RevisedSimplex engine(prob, options);
      sol = engine.solve_from_basis(round_basis);
      if (sol.optimal()) round_basis = engine.basis();
    } else {
      sol = lp::solve(prob, options);
    }
    if (!sol.optimal()) return out;
    const double eps = sol.x[nv];
    out.levels.push_back(eps);
    allocation.assign(sol.x.begin(), sol.x.begin() + n);

    // 2. A coalition is permanently tight iff x(S) cannot exceed
    //    V(S) - eps in any optimal solution. Test by maximizing x(S)
    //    with eps pinned to the optimum.
    std::vector<std::uint64_t> still_active;
    bool fixed_any = false;
    const lp::Problem base = ctx.base_problem();
    // All aux-max probes of a round share one constraint set (base rows
    // plus eps pinned at the optimum); with the revised engine they run
    // as a warm-started objective chain over a single instance.
    std::optional<ObjectiveChain> aux_chain;
    if (revised) {
      lp::Problem aux(nv + 1, lp::Objective::kMaximize);
      for (std::size_t i = 0; i <= nv; ++i) aux.set_free(i);
      for (const auto& c : base.constraints()) {
        aux.add_constraint(c.coefficients, c.relation, c.rhs);
      }
      std::vector<double> pin(nv + 1, 0.0);
      pin[nv] = 1.0;
      aux.add_constraint(std::move(pin), lp::Relation::kEqual, eps);
      aux_chain.emplace(aux, options);
    }
    for (const std::uint64_t mask : ctx.active) {
      lp::Solution aux_sol;
      if (revised) {
        std::vector<double> obj(nv + 1, 0.0);
        for (int i = 0; i < n; ++i) {
          if ((mask >> i) & 1u) obj[static_cast<std::size_t>(i)] = 1.0;
        }
        aux_sol = aux_chain->solve(obj);
      } else {
        lp::Problem aux_max(nv + 1, lp::Objective::kMaximize);
        for (std::size_t i = 0; i <= nv; ++i) aux_max.set_free(i);
        for (int i = 0; i < n; ++i) {
          if ((mask >> i) & 1u) {
            aux_max.set_objective_coefficient(static_cast<std::size_t>(i),
                                              1.0);
          }
        }
        for (const auto& c : base.constraints()) {
          aux_max.add_constraint(c.coefficients, c.relation, c.rhs);
        }
        std::vector<double> pin(nv + 1, 0.0);
        pin[nv] = 1.0;
        aux_max.add_constraint(std::move(pin), lp::Relation::kEqual, eps);
        aux_sol = lp::solve(aux_max, options);
      }
      if (!aux_sol.optimal()) return out;
      const double max_xs = aux_sol.objective;
      const double bound = tab.values()[mask] - eps;
      if (max_xs <= bound + kTol) {
        ctx.fixed.emplace_back(mask, bound);
        fixed_any = true;
      } else {
        still_active.push_back(mask);
      }
    }
    ctx.active = std::move(still_active);
    if (!fixed_any) break;  // numerically stuck; current allocation stands

    // 3. Stop early once the allocation is pinned down: every player's
    //    payoff range under the fixed constraints is a point.
    if (!ctx.active.empty()) {
      bool unique = true;
      // The probes again share one constraint set; the revised chain
      // maximizes +x_i / -x_i per player (min x_i == -max -x_i), so all
      // 2n probes warm-start off each other.
      std::optional<ObjectiveChain> probe_chain;
      if (revised) {
        lp::Problem p(nv + 1, lp::Objective::kMaximize);
        for (std::size_t v2 = 0; v2 <= nv; ++v2) p.set_free(v2);
        const lp::Problem base2 = ctx.base_problem();
        for (const auto& c : base2.constraints()) {
          p.add_constraint(c.coefficients, c.relation, c.rhs);
        }
        std::vector<double> pin_eps(nv + 1, 0.0);
        pin_eps[nv] = 1.0;
        p.add_constraint(std::move(pin_eps), lp::Relation::kEqual, eps);
        probe_chain.emplace(p, options);
      }
      for (int i = 0; i < n && unique; ++i) {
        double extremes[2];
        for (int dir = 0; dir < 2; ++dir) {
          lp::Solution s2;
          if (revised) {
            std::vector<double> obj(nv + 1, 0.0);
            obj[static_cast<std::size_t>(i)] = dir == 0 ? -1.0 : 1.0;
            s2 = probe_chain->solve(obj);
            if (s2.optimal() && dir == 0) s2.objective = -s2.objective;
          } else {
            lp::Problem p(nv + 1, dir == 0 ? lp::Objective::kMinimize
                                           : lp::Objective::kMaximize);
            for (std::size_t v2 = 0; v2 <= nv; ++v2) p.set_free(v2);
            p.set_objective_coefficient(static_cast<std::size_t>(i), 1.0);
            const lp::Problem base2 = ctx.base_problem();
            for (const auto& c : base2.constraints()) {
              p.add_constraint(c.coefficients, c.relation, c.rhs);
            }
            // Pin eps at the current level: the later rounds only shrink
            // the feasible set, so a unique x-projection here is final.
            std::vector<double> pin_eps(nv + 1, 0.0);
            pin_eps[nv] = 1.0;
            p.add_constraint(std::move(pin_eps), lp::Relation::kEqual, eps);
            s2 = lp::solve(p, options);
          }
          if (!s2.optimal()) {
            unique = false;
            extremes[dir] = 0.0;
            break;
          }
          extremes[dir] = s2.objective;
        }
        if (unique && extremes[1] - extremes[0] > kTol) unique = false;
      }
      if (unique) break;
    }
  }

  out.solved = true;
  out.allocation = std::move(allocation);
  return out;
}

}  // namespace fedshare::game
