// Nucleolus of a TU game (Sec. 3.2.3 of the paper).
//
// Computed with the classical iterative scheme: solve the least-core LP,
// permanently fix the coalitions whose excess is maximal in every optimal
// solution (decided by one auxiliary LP per candidate), and recurse on the
// rest until the allocation is unique. If the core is non-empty the result
// lies in the core (the paper's stated property, which our tests assert).
//
// Two formulations share the scheme:
//  * dense      — one excess row per coalition mask (2^n - 2 rows), the
//    historical path; refuses games past 2^10 rows.
//  * orbit-row  — for games symmetric under a PlayerPartition, one excess
//    row per *orbit* with multiplicity weights: variables are per-type
//    shares x_t, the row of orbit c reads sum_t c_t * x_t + eps >= V(c),
//    and the whole probe chain runs on prod_t (m_t + 1) - 2 rows. The
//    nucleolus of a symmetric game is symmetric (swapping two same-type
//    players permutes the excess multiset, and the nucleolus is unique),
//    so restricting the LPs to the symmetric subspace loses nothing and
//    the per-type optimum expands to the per-player allocation with
//    members of a type sharing equally. Raises the ceiling from n = 10
//    to typed federations bounded only by orbit count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.hpp"
#include "core/symmetry.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

/// Result of a nucleolus computation.
struct NucleolusResult {
  bool solved = false;             ///< all LPs solved to optimality
  std::vector<double> allocation;  ///< the nucleolus payoff vector
  std::vector<double> levels;      ///< epsilon level fixed at each round
  /// Introspection for the bench/report layers (filled by both
  /// formulations): excess rows carried by every probe LP, LPs solved
  /// across the scheme, and total simplex pivots.
  std::uint64_t excess_rows = 0;
  std::uint64_t lps_solved = 0;
  std::uint64_t pivots = 0;
};

/// Computes the nucleolus on the dense formulation (one excess row per
/// coalition). Guarded by row count: games needing more than 2^10 - 2
/// excess rows (n > 10) are refused with a message pointing at the
/// orbit-row formulation (--symmetry auto/exact).
[[nodiscard]] NucleolusResult nucleolus(const Game& game);

/// Variant threading solver options (in particular a ComputeBudget)
/// through every internal LP. When the budget trips mid-scheme the
/// result comes back with solved == false rather than hanging; callers
/// degrade (the CLI drops the nucleolus row with a resilience note).
[[nodiscard]] NucleolusResult nucleolus(const Game& game,
                                        const lp::SimplexOptions& options);

/// Orbit-row nucleolus of a game quotiented by a player partition. The
/// base game must actually be symmetric under the partition (the
/// QuotientGame contract; see verified_partition). Orbit values come
/// from the QuotientGame's sharded cache — with options.budget set they
/// are materialised under the budget (one unit per orbit row) and a
/// trip returns solved == false, the PR 1 fallback-cascade hook.
/// Guarded on orbit count (2^15 rows) instead of player count.
[[nodiscard]] NucleolusResult nucleolus_quotient(
    const QuotientGame& game, const lp::SimplexOptions& options = {});

/// Dispatch: the orbit-row formulation when `partition` is non-trivial,
/// the dense formulation otherwise (an all-singletons partition quotients
/// nothing — every orbit is a mask — so dense is the faster identical
/// answer).
[[nodiscard]] NucleolusResult nucleolus(const Game& game,
                                        const PlayerPartition& partition,
                                        const lp::SimplexOptions& options);

}  // namespace fedshare::game
