// Nucleolus of a TU game (Sec. 3.2.3 of the paper).
//
// Computed with the classical iterative scheme: solve the least-core LP,
// permanently fix the coalitions whose excess is maximal in every optimal
// solution (decided by one auxiliary LP per candidate), and recurse on the
// rest until the allocation is unique. If the core is non-empty the result
// lies in the core (the paper's stated property, which our tests assert).
#pragma once

#include <vector>

#include "core/game.hpp"
#include "lp/simplex.hpp"

namespace fedshare::game {

/// Result of a nucleolus computation.
struct NucleolusResult {
  bool solved = false;             ///< all LPs solved to optimality
  std::vector<double> allocation;  ///< the nucleolus payoff vector
  std::vector<double> levels;      ///< epsilon level fixed at each round
};

/// Computes the nucleolus. Requires 1 <= n <= 10 (each round solves up to
/// 2^n auxiliary LPs over 2^n rows).
[[nodiscard]] NucleolusResult nucleolus(const Game& game);

/// Variant threading solver options (in particular a ComputeBudget)
/// through every internal LP. When the budget trips mid-scheme the
/// result comes back with solved == false rather than hanging; callers
/// degrade (the CLI drops the nucleolus row with a resilience note).
[[nodiscard]] NucleolusResult nucleolus(const Game& game,
                                        const lp::SimplexOptions& options);

}  // namespace fedshare::game
