// Sharded, lock-striped memo table for coalition values.
//
// A ValueCache maps coalition bitmasks to V(S) so that each coalition's
// characteristic-function evaluation — an allocation LP in the paper's
// model — is solved once per federation instance and then shared by
// every consumer: tabulation, exact and Monte-Carlo Shapley, the
// nucleolus and core checks (through the tabulated game), and the
// incentive/sensitivity sweeps that re-query V(N) after tabulating.
//
// Concurrency: the key space is hashed across a fixed power-of-two
// number of shards, each a mutex-guarded open hash map, so concurrent
// readers and writers on different shards never contend and same-shard
// operations serialise only briefly. value_or_compute() runs the
// compute callable *outside* the shard lock (an LP solve must never
// block unrelated lookups); if two threads race to materialise the same
// mask, both compute but the first store wins — harmless, because the
// characteristic function is deterministic, and rare, because the
// parallel tabulation path partitions masks across chunks.
//
// Budget accounting (see runtime/budget.hpp "charging rule"): a hit is
// free; the cost of a miss is charged by the *caller* computing the
// value, so one distinct coalition costs exactly one unit no matter how
// many schemes later re-read it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/budget.hpp"

namespace fedshare::exec {

/// One consistent-enough view of a cache's counters (each counter is an
/// atomic snapshot; the set is taken without a global lock, so the
/// numbers are exact once the cache is quiescent).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< entries dropped by invalidate_if
  std::size_t entries = 0;          ///< distinct masks currently cached
  std::uint64_t batch_flushes = 0;     ///< non-empty store_batch calls
  std::uint64_t batched_stores = 0;    ///< entries written via store_batch
  std::uint64_t batch_shard_locks = 0; ///< shard locks taken by store_batch
  /// hits / (hits + misses); 0 when nothing was looked up yet.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Thread-safe memo of double values keyed by 64-bit coalition mask.
class ValueCache {
 public:
  /// `shards` is rounded up to a power of two in [1, 256]; the default
  /// comfortably out-stripes any realistic worker count.
  explicit ValueCache(int shards = 64);

  ValueCache(const ValueCache&) = delete;
  ValueCache& operator=(const ValueCache&) = delete;

  /// The cached value for `mask`, if materialised.
  [[nodiscard]] std::optional<double> lookup(std::uint64_t mask) const;

  /// Stores `value` for `mask`. First store wins; a concurrent or
  /// repeated store of the same mask is a no-op (values are
  /// deterministic, so any stored value is the right one).
  void store(std::uint64_t mask, double value);

  /// Stores many (mask, value) pairs, grouping them so each destination
  /// shard's lock is taken exactly once per call instead of once per
  /// entry. Same first-store-wins semantics as store(). This is the
  /// write-combining back-end for CacheWriteBuffer: during a parallel
  /// tabulation every worker otherwise takes one shard lock per stored
  /// coalition, and the batched path collapses that to ~one lock per
  /// shard per flush.
  void store_batch(
      const std::vector<std::pair<std::uint64_t, double>>& entries);

  /// Generation-guarded store_batch: the caller passes the generation()
  /// it observed when the entries were *staged* (i.e. before their
  /// values were computed). Entries destined for a shard whose lock is
  /// acquired after an invalidate_if has bumped the generation are
  /// dropped instead of written — a buffered value computed against the
  /// pre-invalidation state must never resurrect a mask the
  /// invalidation erased (it would reintroduce a value derived from
  /// state that no longer exists). Dropping is always safe: the next
  /// reader simply misses and recomputes against the current state.
  /// Returns how many entries were actually offered to their shard.
  std::size_t store_batch(
      const std::vector<std::pair<std::uint64_t, double>>& entries,
      std::uint64_t staged_generation);

  /// Returns the cached value for `mask`, computing it with `compute()`
  /// (outside any lock) and storing it on a miss. Counts one hit or one
  /// miss per call.
  template <typename Fn>
  double value_or_compute(std::uint64_t mask, Fn&& compute) {
    if (const auto cached = lookup(mask)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    const double value = compute();
    store(mask, value);
    return value;
  }

  /// Budget-aware variant implementing the charging rule directly: a
  /// hit is free; a miss charges `budget` one unit *before* computing
  /// and returns nullopt if the charge trips.
  template <typename Fn>
  std::optional<double> value_or_compute_budgeted(
      std::uint64_t mask, const runtime::ComputeBudget& budget,
      Fn&& compute) {
    if (const auto cached = lookup(mask)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (!budget.charge()) return std::nullopt;
    const double value = compute();
    store(mask, value);
    return value;
  }

  /// Drops every cached entry whose mask satisfies `pred` and returns
  /// how many were dropped (also added to the invalidation counter).
  /// This is the churn API: an event touching facility slot s calls
  /// invalidate_if([&](auto mask) { return mask >> s & 1; }) so only the
  /// affected slice of the lattice is recomputed. Shards are processed
  /// one at a time under their own locks, so concurrent readers of
  /// *other* shards never block and concurrent readers of the same
  /// shard serialise briefly; a reader racing the invalidation sees
  /// either the old value or a miss, never a torn entry. `pred` must
  /// not touch the cache (the shard lock is held while it runs).
  ///
  /// The cache generation is bumped *before* any entry is dropped, so a
  /// generation-guarded store_batch staged before this call can never
  /// write into a shard this invalidation has already scanned (see
  /// store_batch's two-argument overload).
  template <typename Pred>
  std::size_t invalidate_if(Pred&& pred) {
    generation_.fetch_add(1, std::memory_order_acq_rel);
    std::size_t dropped = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lk(shard.m);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (pred(it->first)) {
          it = shard.map.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  /// Monotone counter bumped at the *start* of every invalidate_if.
  /// Writers that stage values outside the shard locks (CacheWriteBuffer)
  /// snapshot it before computing and pass it to the guarded
  /// store_batch, which drops the batch's entries wherever the
  /// generation has moved on.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Every cached (mask, value) pair, sorted by mask. Intended for
  /// checkpointing: the result is deterministic for a quiescent cache
  /// regardless of shard layout or insertion order. Takes each shard
  /// lock once.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>>
  export_entries() const;

  /// Number of distinct masks materialised.
  [[nodiscard]] std::size_t size() const;

  /// Lookup statistics (relaxed counters; exact once quiescent).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when nothing was looked up yet.
  [[nodiscard]] double hit_rate() const noexcept;
  /// Entries dropped by invalidate_if since construction (or clear()).
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Non-empty store_batch calls since construction (or clear()).
  [[nodiscard]] std::uint64_t batch_flushes() const noexcept {
    return batch_flushes_.load(std::memory_order_relaxed);
  }
  /// Entries written through store_batch (counts duplicates too: the
  /// write is attempted even when first-store-wins makes it a no-op).
  [[nodiscard]] std::uint64_t batched_stores() const noexcept {
    return batched_stores_.load(std::memory_order_relaxed);
  }
  /// Shard locks taken by store_batch — the contention actually paid.
  /// Compare against batched_stores() to see the write-combining ratio.
  [[nodiscard]] std::uint64_t batch_shard_locks() const noexcept {
    return batch_shard_locks_.load(std::memory_order_relaxed);
  }

  /// Counter snapshot (hits, misses, invalidations, live entries).
  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry and resets the statistics.
  void clear();

 private:
  struct Shard {
    mutable std::mutex m;
    std::unordered_map<std::uint64_t, double> map;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t mask) const noexcept;

  friend class CacheWriteBuffer;  // counts its local hits on hits_

  std::vector<Shard> shards_;
  std::uint64_t shard_mask_;  // shards_.size() - 1 (power of two)
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> batch_flushes_{0};
  std::atomic<std::uint64_t> batched_stores_{0};
  std::atomic<std::uint64_t> batch_shard_locks_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// Single-thread write-combining front-end over a shared ValueCache.
///
/// One worker of a parallel tabulation owns one buffer for its chunk.
/// Reads go through a private read-through map first (a hit there never
/// touches a shard lock — it still counts on the shared hit counter, so
/// the hit/miss statistics are exactly what the unbuffered path would
/// record at one thread); computed values are staged locally and pushed
/// to the shared cache in store_batch() groups of `flush_threshold`.
/// Values stay deterministic: the cache keeps first-store-wins, and
/// every staged value is the same deterministic V(S) any other worker
/// would compute. The destructor flushes, so scoping the buffer to the
/// chunk body guarantees nothing is lost. NOT thread-safe — one buffer
/// per worker.
class CacheWriteBuffer {
 public:
  explicit CacheWriteBuffer(ValueCache& cache,
                            std::size_t flush_threshold = 32)
      : cache_(cache),
        threshold_(flush_threshold == 0 ? 1 : flush_threshold) {
    pending_.reserve(threshold_);
  }
  ~CacheWriteBuffer() { flush(); }

  CacheWriteBuffer(const CacheWriteBuffer&) = delete;
  CacheWriteBuffer& operator=(const CacheWriteBuffer&) = delete;

  /// Buffered value_or_compute: local map, then shared cache, then
  /// compute (outside all locks). `compute` may recurse through this
  /// same buffer (the closure recursion in Federation::value does).
  template <typename Fn>
  double value_or_compute(std::uint64_t mask, Fn&& compute) {
    if (const auto it = local_.find(mask); it != local_.end()) {
      cache_.hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    if (const auto cached = cache_.lookup(mask)) {
      cache_.hits_.fetch_add(1, std::memory_order_relaxed);
      local_.emplace(mask, *cached);
      return *cached;
    }
    cache_.misses_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.empty()) staged_generation_ = cache_.generation();
    const double value = compute();
    // compute() may have materialised `mask` itself via recursion; the
    // emplace re-checks so first-store-wins holds locally too.
    const auto [it, inserted] = local_.emplace(mask, value);
    if (inserted) {
      pending_.emplace_back(mask, value);
      if (pending_.size() >= threshold_) flush();
    }
    return it->second;
  }

  /// Pushes every staged entry to the shared cache in one batch. The
  /// batch carries the generation observed when its first entry was
  /// staged, so entries racing an invalidate_if are dropped rather than
  /// resurrected (the shared cache decides per shard, under the shard
  /// lock).
  void flush() {
    if (pending_.empty()) return;
    cache_.store_batch(pending_, staged_generation_);
    pending_.clear();
  }

 private:
  ValueCache& cache_;
  std::size_t threshold_;
  std::uint64_t staged_generation_ = 0;
  std::unordered_map<std::uint64_t, double> local_;
  std::vector<std::pair<std::uint64_t, double>> pending_;
};

}  // namespace fedshare::exec
