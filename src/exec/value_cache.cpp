#include "exec/value_cache.hpp"

#include <algorithm>

namespace fedshare::exec {

namespace {

// Masks are tiny integers with structure in the low bits; finalise them
// so shard selection stays uniform (same splitmix64 finaliser as
// chunk_seed).
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t round_up_pow2(int n) {
  std::size_t p = 1;
  const auto target =
      static_cast<std::size_t>(std::clamp(n, 1, 256));
  while (p < target) p <<= 1;
  return p;
}

}  // namespace

ValueCache::ValueCache(int shards)
    : shards_(round_up_pow2(shards)),
      shard_mask_(shards_.size() - 1) {}

ValueCache::Shard& ValueCache::shard_of(std::uint64_t mask) const noexcept {
  return const_cast<Shard&>(shards_[mix(mask) & shard_mask_]);
}

std::optional<double> ValueCache::lookup(std::uint64_t mask) const {
  const Shard& shard = shard_of(mask);
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(mask);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

void ValueCache::store(std::uint64_t mask, double value) {
  Shard& shard = shard_of(mask);
  std::lock_guard<std::mutex> lk(shard.m);
  shard.map.emplace(mask, value);  // first store wins
}

std::size_t ValueCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    total += shard.map.size();
  }
  return total;
}

double ValueCache::hit_rate() const noexcept {
  const std::uint64_t h = hits();
  const std::uint64_t m = misses();
  if (h + m == 0) return 0.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

CacheStats ValueCache::stats() const {
  CacheStats s;
  s.hits = hits();
  s.misses = misses();
  s.invalidations = invalidations();
  s.entries = size();
  return s;
}

void ValueCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace fedshare::exec
