#include "exec/value_cache.hpp"

#include <algorithm>

namespace fedshare::exec {

namespace {

// Masks are tiny integers with structure in the low bits; finalise them
// so shard selection stays uniform (same splitmix64 finaliser as
// chunk_seed).
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t round_up_pow2(int n) {
  std::size_t p = 1;
  const auto target =
      static_cast<std::size_t>(std::clamp(n, 1, 256));
  while (p < target) p <<= 1;
  return p;
}

}  // namespace

ValueCache::ValueCache(int shards)
    : shards_(round_up_pow2(shards)),
      shard_mask_(shards_.size() - 1) {}

ValueCache::Shard& ValueCache::shard_of(std::uint64_t mask) const noexcept {
  return const_cast<Shard&>(shards_[mix(mask) & shard_mask_]);
}

std::optional<double> ValueCache::lookup(std::uint64_t mask) const {
  const Shard& shard = shard_of(mask);
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(mask);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

void ValueCache::store(std::uint64_t mask, double value) {
  Shard& shard = shard_of(mask);
  std::lock_guard<std::mutex> lk(shard.m);
  shard.map.emplace(mask, value);  // first store wins
}

void ValueCache::store_batch(
    const std::vector<std::pair<std::uint64_t, double>>& entries) {
  // Unguarded: the caller asserts no invalidation can race this batch
  // (the historical contract — serve applies serialise flushes and
  // invalidations on one mutex). Passing the current generation makes
  // the guard vacuous unless an invalidate_if starts mid-call.
  (void)store_batch(entries, generation());
}

std::size_t ValueCache::store_batch(
    const std::vector<std::pair<std::uint64_t, double>>& entries,
    std::uint64_t staged_generation) {
  if (entries.empty()) return 0;
  // Sort a small index array by destination shard so each shard's lock
  // is taken once per call. Batches are flush-threshold sized (~32), so
  // the sort is noise next to even one uncontended lock round-trip.
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return (mix(entries[a].first) & shard_mask_) <
                            (mix(entries[b].first) & shard_mask_);
                   });
  std::uint64_t locks = 0;
  std::size_t stored = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint64_t shard_idx = mix(entries[order[i]].first) & shard_mask_;
    Shard& shard = const_cast<Shard&>(shards_[shard_idx]);
    std::lock_guard<std::mutex> lk(shard.m);
    ++locks;
    // Generation check under the shard lock: invalidate_if bumps the
    // generation before it starts scanning shards, so either we still
    // see the staged generation (and the invalidation, which has not
    // visited this shard yet, will erase whatever we write if its
    // predicate matches) or we see a newer one and drop the entries —
    // a stale buffered value never outlives the invalidation it raced.
    const bool stale =
        generation_.load(std::memory_order_acquire) != staged_generation;
    for (; i < order.size() &&
           (mix(entries[order[i]].first) & shard_mask_) == shard_idx;
         ++i) {
      if (stale) continue;
      const auto& [mask, value] = entries[order[i]];
      shard.map.emplace(mask, value);  // first store wins
      ++stored;
    }
  }
  batch_flushes_.fetch_add(1, std::memory_order_relaxed);
  batched_stores_.fetch_add(entries.size(), std::memory_order_relaxed);
  batch_shard_locks_.fetch_add(locks, std::memory_order_relaxed);
  return stored;
}

std::vector<std::pair<std::uint64_t, double>> ValueCache::export_entries()
    const {
  std::vector<std::pair<std::uint64_t, double>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    entries.insert(entries.end(), shard.map.begin(), shard.map.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::size_t ValueCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    total += shard.map.size();
  }
  return total;
}

double ValueCache::hit_rate() const noexcept {
  const std::uint64_t h = hits();
  const std::uint64_t m = misses();
  if (h + m == 0) return 0.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

CacheStats ValueCache::stats() const {
  CacheStats s;
  s.hits = hits();
  s.misses = misses();
  s.invalidations = invalidations();
  s.entries = size();
  s.batch_flushes = batch_flushes();
  s.batched_stores = batched_stores();
  s.batch_shard_locks = batch_shard_locks();
  return s;
}

void ValueCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  batch_flushes_.store(0, std::memory_order_relaxed);
  batched_stores_.store(0, std::memory_order_relaxed);
  batch_shard_locks_.store(0, std::memory_order_relaxed);
}

}  // namespace fedshare::exec
