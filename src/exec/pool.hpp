// Deterministic parallel execution engine.
//
// exec::Pool is a work-stealing thread pool built around one invariant:
// the result of a parallel computation is bit-identical regardless of
// the thread count, including 1. The contract that delivers this:
//
//  * Fixed chunk decomposition. A range [begin, end) is split into
//    chunks of a caller-chosen size; the decomposition depends only on
//    (begin, end, chunk_size), never on the thread count. Threads only
//    decide *who* runs a chunk, never *what* a chunk is.
//  * Chunk-addressed work. A chunk body must derive everything it needs
//    from the ChunkRange alone — outputs go to per-index or per-chunk
//    slots, RNG streams are seeded from chunk_seed(base_seed, index) —
//    so execution order is unobservable.
//  * Ordered reduction. parallel_reduce combines per-chunk partials in
//    ascending chunk order after the join, fixing the floating-point
//    summation order independent of scheduling.
//
// Scheduling: each participant (the calling thread plus the workers)
// owns a contiguous span of chunk indices and pops from its front; idle
// participants steal from the back of the most loaded victim. Spans are
// mutex-guarded — chunks are coarse by design, so the lock traffic is
// negligible next to the chunk bodies (coalition-value LPs).
//
// Budget cooperation: parallel_for_budgeted forks one child
// ComputeBudget per chunk from the caller's budget (same absolute
// deadline and tokens, remaining node headroom) and cancels the whole
// job the moment any chunk's budget trips; the children's charges are
// reconciled into the parent at the join so post-join accounting
// matches a serial run.
//
// With threads() == 1 every entry point degenerates to an inline loop
// on the calling thread — no workers, no locks, byte-identical to the
// pre-exec serial code. Nested parallel regions (a chunk body calling
// parallel_for again) also run inline, so callers never deadlock the
// pool by composing parallel algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/budget.hpp"

namespace fedshare::exec {

/// One chunk of a fixed decomposition: item indices [begin, end) and the
/// chunk's ordinal `index` within the range (0-based, decomposition
/// order).
struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t index = 0;
};

/// Deterministic per-chunk RNG seed stream: a splitmix64-style mix of
/// (base_seed, chunk_index) with golden-ratio striding, so consecutive
/// chunk indices land in well-separated states. Chunk bodies that draw
/// random numbers must seed from this, never from a shared sequential
/// stream.
[[nodiscard]] std::uint64_t chunk_seed(std::uint64_t base_seed,
                                       std::uint64_t chunk_index) noexcept;

/// Work-stealing thread pool. One job runs at a time; spawn it once and
/// reuse it (workers park on a condition variable between jobs).
class Pool {
 public:
  /// `threads` <= 1 creates a serial pool (no worker threads at all).
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs `body` over the fixed chunk decomposition of [begin, end).
  /// `body` returns false to cancel the job: chunks not yet started are
  /// skipped and parallel_for returns false. Chunks already running
  /// finish normally (cancellation is cooperative at chunk granularity).
  /// Returns true when every chunk ran to completion. Exceptions thrown
  /// by `body` cancel the job and are rethrown on the calling thread.
  /// Reentrant calls (from inside a chunk body) run inline and serially.
  bool parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t chunk_size,
                    const std::function<bool(const ChunkRange&)>& body);

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// --- Global executor ------------------------------------------------
///
/// Library code parallelises through these free functions instead of
/// threading a Pool& through every signature. The thread count defaults
/// to 1 (serial, byte-identical output); it is raised by the CLI's
/// --threads flag or the FEDSHARE_THREADS environment variable (read
/// once, on first use; set_threads() overrides it).

/// Sets the global thread count (clamped to >= 1). Replaces the global
/// pool; must not be called from inside a parallel region.
void set_threads(int n);

/// Current global thread count (resolves FEDSHARE_THREADS on first call).
[[nodiscard]] int threads();

/// True while the calling thread is executing a chunk body of any pool
/// (nested parallel calls run inline).
[[nodiscard]] bool in_parallel_region() noexcept;

/// parallel_for on the global pool (inline when threads() == 1 or when
/// already inside a parallel region).
bool parallel_for(std::uint64_t begin, std::uint64_t end,
                  std::uint64_t chunk_size,
                  const std::function<bool(const ChunkRange&)>& body);

/// Budget-cooperating parallel_for: each chunk body receives a child of
/// `parent` (fork: same deadline and tokens, remaining node headroom).
/// A chunk whose body returns false — typically because its child
/// budget tripped — cancels the whole job through the job-level
/// cancellation token, so sibling chunks observe the trip at their next
/// charge. After the join the children's used() units are charged into
/// `parent` in one bulk charge, which reproduces the serial node-cap
/// verdict (the parent trips iff the total work exceeded its cap).
/// Returns true iff no chunk cancelled and the reconciliation charge
/// left `parent` within budget.
bool parallel_for_budgeted(
    std::uint64_t begin, std::uint64_t end, std::uint64_t chunk_size,
    const runtime::ComputeBudget& parent,
    const std::function<bool(const ChunkRange&,
                             const runtime::ComputeBudget&)>& body);

/// Ordered parallel reduction: `map` produces one partial per chunk
/// (stored in a per-chunk slot), then the partials are folded with
/// `combine` in ascending chunk order on the calling thread. The fold
/// order — and therefore the floating-point rounding — is a pure
/// function of the decomposition, so the result is bit-identical for
/// any thread count.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::uint64_t begin, std::uint64_t end,
                                std::uint64_t chunk_size, T init, MapFn&& map,
                                CombineFn&& combine) {
  if (end <= begin) return init;
  const std::uint64_t items = end - begin;
  const std::uint64_t chunk = chunk_size == 0 ? 1 : chunk_size;
  const std::uint64_t num_chunks = (items + chunk - 1) / chunk;
  std::vector<T> partials(num_chunks);
  parallel_for(begin, end, chunk, [&](const ChunkRange& r) {
    partials[r.index] = map(r);
    return true;
  });
  T acc = std::move(init);
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace fedshare::exec
