#include "exec/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace fedshare::exec {

namespace {

// Set while the calling thread executes a chunk body (worker or caller
// participation, or an inline serial run). Nested parallel entry points
// check it and degrade to inline loops.
thread_local bool tls_in_parallel = false;

struct ParallelRegionGuard {
  bool saved;
  ParallelRegionGuard() : saved(tls_in_parallel) { tls_in_parallel = true; }
  ~ParallelRegionGuard() { tls_in_parallel = saved; }
};

// Inline serial execution of the fixed decomposition — the reference
// semantics every parallel schedule must reproduce.
bool run_serial(std::uint64_t begin, std::uint64_t end,
                std::uint64_t chunk_size,
                const std::function<bool(const ChunkRange&)>& body) {
  const std::uint64_t chunk = chunk_size == 0 ? 1 : chunk_size;
  std::uint64_t index = 0;
  for (std::uint64_t b = begin; b < end; b += chunk, ++index) {
    const ChunkRange r{b, std::min(end, b + chunk), index};
    ParallelRegionGuard guard;
    if (!body(r)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t chunk_seed(std::uint64_t base_seed,
                         std::uint64_t chunk_index) noexcept {
  // splitmix64 finaliser over a golden-ratio-strided combination, the
  // same idiom the outage sampler uses for per-scenario streams.
  std::uint64_t z = base_seed ^ (chunk_index * 0x9e3779b97f4a7c15ULL +
                                 0x2545f4914f6cdd1dULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Pool::Impl {
  // One participant's contiguous span of chunk indices. The owner pops
  // from the front, thieves pop from the back; both under the span's
  // mutex (chunks are coarse, so contention is negligible).
  struct Span {
    std::mutex m;
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
  };

  struct Job {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t chunk = 1;
    std::uint64_t num_chunks = 0;
    const std::function<bool(const ChunkRange&)>* body = nullptr;
    std::vector<std::unique_ptr<Span>> spans;  // one per participant
    std::atomic<bool> cancelled{false};
    std::atomic<int> active = 0;  // participants still draining work
    std::mutex error_m;
    std::exception_ptr error;
  };

  explicit Impl(int participants) : participants_(participants) {
    workers_.reserve(static_cast<std::size_t>(participants - 1));
    for (int w = 1; w < participants; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutting_down_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  bool run(std::uint64_t begin, std::uint64_t end, std::uint64_t chunk_size,
           const std::function<bool(const ChunkRange&)>& body) {
    const std::uint64_t chunk = chunk_size == 0 ? 1 : chunk_size;
    Job job;
    job.begin = begin;
    job.end = end;
    job.chunk = chunk;
    job.num_chunks = (end - begin + chunk - 1) / chunk;
    job.body = &body;
    job.spans.reserve(static_cast<std::size_t>(participants_));
    for (int p = 0; p < participants_; ++p) {
      auto span = std::make_unique<Span>();
      const auto pp = static_cast<std::uint64_t>(p);
      const auto np = static_cast<std::uint64_t>(participants_);
      span->head = job.num_chunks * pp / np;
      span->tail = job.num_chunks * (pp + 1) / np;
      job.spans.push_back(std::move(span));
    }
    job.active.store(participants_, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &job;
      ++job_seq_;
    }
    cv_work_.notify_all();

    participate(job, 0);  // the calling thread is participant 0

    {
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [&] {
        return job.active.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
    return !job.cancelled.load(std::memory_order_relaxed);
  }

 private:
  void worker_main(int worker_index) {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_work_.wait(lk,
                      [&] { return shutting_down_ || job_seq_ != seen; });
        if (shutting_down_) return;
        seen = job_seq_;
        job = job_;
      }
      if (job != nullptr) participate(*job, worker_index);
    }
  }

  // Drains chunks — own span first, then stealing — until no work is
  // left or the job is cancelled, then signs off.
  void participate(Job& job, int self) {
    {
      ParallelRegionGuard guard;
      std::uint64_t chunk_index = 0;
      while (!job.cancelled.load(std::memory_order_relaxed) &&
             take(job, self, chunk_index)) {
        const std::uint64_t b = job.begin + chunk_index * job.chunk;
        const ChunkRange r{b, std::min(job.end, b + job.chunk), chunk_index};
        bool keep = false;
        try {
          keep = (*job.body)(r);
        } catch (...) {
          std::lock_guard<std::mutex> lk(job.error_m);
          if (!job.error) job.error = std::current_exception();
        }
        if (!keep) job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (job.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last participant out: wake the caller. Taking the pool mutex
      // orders this notify against the caller's wait predicate.
      std::lock_guard<std::mutex> lk(m_);
      cv_done_.notify_all();
    }
  }

  // Claims the next chunk index for participant `self`: front of its own
  // span, else the back of the first victim with work left.
  bool take(Job& job, int self, std::uint64_t& chunk_index) {
    {
      Span& mine = *job.spans[static_cast<std::size_t>(self)];
      std::lock_guard<std::mutex> lk(mine.m);
      if (mine.head < mine.tail) {
        chunk_index = mine.head++;
        return true;
      }
    }
    for (int off = 1; off < participants_; ++off) {
      const int victim = (self + off) % participants_;
      Span& theirs = *job.spans[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lk(theirs.m);
      if (theirs.head < theirs.tail) {
        chunk_index = --theirs.tail;
        return true;
      }
    }
    return false;
  }

  const int participants_;
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  bool shutting_down_ = false;
};

Pool::Pool(int threads) : threads_(std::max(1, threads)) {
  impl_ = threads_ > 1 ? new Impl(threads_) : nullptr;
}

Pool::~Pool() { delete impl_; }

bool Pool::parallel_for(std::uint64_t begin, std::uint64_t end,
                        std::uint64_t chunk_size,
                        const std::function<bool(const ChunkRange&)>& body) {
  if (end <= begin) return true;
  if (impl_ == nullptr || tls_in_parallel) {
    return run_serial(begin, end, chunk_size, body);
  }
  return impl_->run(begin, end, chunk_size, body);
}

// --- Global executor -------------------------------------------------

namespace {

std::mutex g_executor_m;
int g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<Pool> g_pool;

// FEDSHARE_THREADS env override; invalid or missing values mean serial.
int env_threads() {
  const char* env = std::getenv("FEDSHARE_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* endp = nullptr;
  const long v = std::strtol(env, &endp, 10);
  if (endp == env || *endp != '\0' || v < 1 || v > 1024) return 1;
  return static_cast<int>(v);
}

int threads_locked() {
  if (g_threads == 0) g_threads = env_threads();
  return g_threads;
}

}  // namespace

void set_threads(int n) {
  std::lock_guard<std::mutex> lk(g_executor_m);
  const int clamped = std::max(1, n);
  if (g_threads == clamped && g_pool != nullptr) return;
  g_threads = clamped;
  g_pool.reset();
}

int threads() {
  std::lock_guard<std::mutex> lk(g_executor_m);
  return threads_locked();
}

bool in_parallel_region() noexcept { return tls_in_parallel; }

bool parallel_for(std::uint64_t begin, std::uint64_t end,
                  std::uint64_t chunk_size,
                  const std::function<bool(const ChunkRange&)>& body) {
  if (end <= begin) return true;
  Pool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lk(g_executor_m);
    if (threads_locked() > 1 && !tls_in_parallel) {
      if (g_pool == nullptr) g_pool = std::make_unique<Pool>(g_threads);
      pool = g_pool.get();
    }
  }
  if (pool == nullptr) return run_serial(begin, end, chunk_size, body);
  return pool->parallel_for(begin, end, chunk_size, body);
}

bool parallel_for_budgeted(
    std::uint64_t begin, std::uint64_t end, std::uint64_t chunk_size,
    const runtime::ComputeBudget& parent,
    const std::function<bool(const ChunkRange&,
                             const runtime::ComputeBudget&)>& body) {
  if (end <= begin) return true;
  if (threads() == 1 || tls_in_parallel) {
    // Serial reference path: chunks charge the parent directly, exactly
    // as the pre-exec serial code did.
    return run_serial(begin, end, chunk_size, [&](const ChunkRange& r) {
      return body(r, parent);
    });
  }
  const runtime::CancellationToken job_token =
      runtime::CancellationToken::create();
  std::atomic<std::uint64_t> child_used{0};
  const bool completed =
      parallel_for(begin, end, chunk_size, [&](const ChunkRange& r) {
        const runtime::ComputeBudget child = parent.fork(job_token);
        const bool keep = body(r, child);
        child_used.fetch_add(child.used(), std::memory_order_relaxed);
        if (!keep) job_token.cancel();
        return keep;
      });
  // Reconcile the children's work into the parent so post-join node-cap
  // accounting (and the stop reason) match a serial run's verdict.
  const std::uint64_t used = child_used.load(std::memory_order_relaxed);
  const bool within_budget = used == 0 || parent.charge(used);
  return completed && within_budget;
}

}  // namespace fedshare::exec
