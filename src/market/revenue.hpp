// Commercial-scenario revenue modelling (Sec. 3.1 and the PlanetLab fee
// case of Sec. 4).
//
// External customers (the paper's set E — e.g. Google's and HP's annual
// PlanetLab subscriptions) pay for service from the federated
// infrastructure. Profit is P = mu * sum_k u_k(x_k), with mu <= 1 the
// utility-to-money conversion of the underlying market. Each customer is
// *brought in* by one facility (its account owner), which matters under
// the status-quo policy ("each top-level authority retains the totality
// of the fees that it brings in") but not under federation-wide
// settlement. RevenueModel evaluates both and the Shapley alternative.
#pragma once

#include <string>
#include <vector>

#include "model/federation.hpp"

namespace fedshare::market {

/// One paying customer: demand plus the facility that owns the account.
struct Customer {
  std::string name;
  model::RequestClass demand;  ///< what the subscription entitles them to
  int sponsor_facility = 0;    ///< who signed them (retains fees today)
};

/// Revenue model parameters.
struct RevenueModel {
  double mu = 1.0;  ///< monetary units per utility unit, in (0, 1]

  /// Throws std::invalid_argument when mu is out of (0, 1].
  void validate() const;
};

/// Result of a settlement evaluation.
struct SettlementReport {
  double total_profit = 0.0;  ///< P = mu * V(N) with all customers pooled
  /// Per-facility revenue under the status quo: each facility serves only
  /// its own customers on its own infrastructure and keeps the proceeds.
  std::vector<double> standalone_revenue;
  /// Per-facility revenue when fees are pooled and split by the Shapley
  /// shares of the federated game over the pooled customer demand.
  std::vector<double> shapley_revenue;
  /// Same, split proportionally to availability weights (Eq. 6).
  std::vector<double> proportional_revenue;

  /// Sum of standalone revenues (the unfederated industry total).
  [[nodiscard]] double standalone_total() const;
};

/// Evaluates the three settlement regimes for `customers` on the
/// federation's location space. Sponsor indices must be valid facility
/// ids. Requires <= 12 facilities.
[[nodiscard]] SettlementReport evaluate_settlement(
    const model::LocationSpace& space, const std::vector<Customer>& customers,
    const RevenueModel& revenue);

}  // namespace fedshare::market
