#include "market/revenue.hpp"

#include <numeric>
#include <stdexcept>

#include "core/sharing.hpp"
#include "model/value.hpp"

namespace fedshare::market {

void RevenueModel::validate() const {
  if (!(mu > 0.0) || mu > 1.0) {
    throw std::invalid_argument("RevenueModel: mu must be in (0, 1]");
  }
}

double SettlementReport::standalone_total() const {
  return std::accumulate(standalone_revenue.begin(),
                         standalone_revenue.end(), 0.0);
}

SettlementReport evaluate_settlement(const model::LocationSpace& space,
                                     const std::vector<Customer>& customers,
                                     const RevenueModel& revenue) {
  revenue.validate();
  const int n = space.num_facilities();
  if (n > 12) {
    throw std::invalid_argument(
        "evaluate_settlement: at most 12 facilities");
  }
  for (const auto& c : customers) {
    c.demand.validate();
    if (c.sponsor_facility < 0 || c.sponsor_facility >= n) {
      throw std::invalid_argument(
          "evaluate_settlement: bad sponsor facility for customer '" +
          c.name + "'");
    }
  }

  SettlementReport report;
  report.standalone_revenue.assign(static_cast<std::size_t>(n), 0.0);

  // Status quo: each facility serves its own customers alone.
  for (int i = 0; i < n; ++i) {
    model::DemandProfile own;
    for (const auto& c : customers) {
      if (c.sponsor_facility == i) own.classes.push_back(c.demand);
    }
    if (own.classes.empty()) continue;
    report.standalone_revenue[static_cast<std::size_t>(i)] =
        revenue.mu *
        model::coalition_value(space, own, game::Coalition::single(i));
  }

  // Federated: all customers served by the pooled infrastructure; the
  // coalition game is played over the pooled demand.
  model::DemandProfile pooled;
  for (const auto& c : customers) pooled.classes.push_back(c.demand);
  model::Federation fed(space, pooled);
  const auto g = fed.build_game();
  report.total_profit = revenue.mu * g.grand_value();

  const auto shapley = game::shapley_shares(g);
  const auto prop = game::proportional_shares(fed.availability_weights());
  report.shapley_revenue.resize(static_cast<std::size_t>(n));
  report.proportional_revenue.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    report.shapley_revenue[ui] = shapley[ui] * report.total_profit;
    report.proportional_revenue[ui] = prop[ui] * report.total_profit;
  }
  return report;
}

}  // namespace fedshare::market
