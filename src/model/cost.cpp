#include "model/cost.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fedshare::model {

double CostModel::facility_cost(const Facility& facility) const {
  validate();
  return alpha * facility.num_locations() +
         beta * facility.units_per_location() +
         gamma * facility.availability();
}

double CostModel::net_value(double gross_value,
                            const std::vector<Facility>& members) const {
  validate();
  if (members.empty()) return 0.0;
  double net = gross_value - federation_fixed_cost;
  for (const auto& f : members) net -= facility_cost(f);
  return net;
}

void CostModel::validate() const {
  const double params[] = {alpha, beta, gamma, federation_fixed_cost};
  for (const double p : params) {
    if (!std::isfinite(p) || p < 0.0) {
      throw std::invalid_argument(
          "CostModel: parameters must be finite and >= 0");
    }
  }
}

game::TabularGame net_value_game(const game::Game& gross,
                                 const std::vector<Facility>& facilities,
                                 const CostModel& cost) {
  cost.validate();
  const int n = gross.num_players();
  if (facilities.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "net_value_game: one facility per player required");
  }
  if (n > 24) {
    throw std::invalid_argument("net_value_game: n must be <= 24");
  }
  std::vector<double> member_cost;
  member_cost.reserve(facilities.size());
  for (const auto& f : facilities) {
    member_cost.push_back(cost.facility_cost(f));
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count, 0.0);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    double total_cost = cost.federation_fixed_cost;
    std::uint64_t b = mask;
    while (b != 0) {
      total_cost += member_cost[static_cast<std::size_t>(__builtin_ctzll(b))];
      b &= b - 1;
    }
    values[mask] = gross.value(game::Coalition::from_bits(mask)) - total_cost;
  }
  return game::TabularGame(n, std::move(values));
}

}  // namespace fedshare::model
