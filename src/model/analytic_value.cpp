#include "model/analytic_value.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedshare::model {

game::TabularGame analytic_game(const LocationSpace& space,
                                const sim::TrafficClass& traffic,
                                bool scaling_per_facility) {
  const int n = space.num_facilities();
  if (n > 12) {
    throw std::invalid_argument("analytic_game: at most 12 facilities");
  }
  traffic.request.validate();
  if (!(traffic.arrival_rate > 0.0)) {
    throw std::invalid_argument("analytic_game: arrival_rate must be > 0");
  }
  const auto needed = static_cast<int>(
      std::ceil(traffic.request.effective_threshold() - 1e-12));

  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count, 0.0);
  const double utility_per_call =
      std::pow(static_cast<double>(needed), traffic.request.exponent);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    const auto coalition = game::Coalition::from_bits(mask);
    const auto pool = space.pool_for(coalition);
    const auto total_locations = static_cast<int>(pool.num_locations());
    if (total_locations < needed) continue;  // structurally blocked
    // Mean integer servers per location (capacity / units-per-call).
    double mean_servers = 0.0;
    for (const double c : pool.capacity) {
      mean_servers += c / traffic.request.units_per_location;
    }
    mean_servers /= static_cast<double>(total_locations);
    const int servers = std::max(1, static_cast<int>(
                                        std::floor(mean_servers + 1e-9)));
    const double rate = scaling_per_facility
                            ? traffic.arrival_rate * coalition.size()
                            : traffic.arrival_rate;
    const auto blocking = sim::any_k_blocking(
        rate, traffic.request.holding_time, needed, total_locations,
        servers);
    values[mask] = rate * (1.0 - blocking.call_blocking) * utility_per_call;
  }
  return game::TabularGame(n, std::move(values));
}

}  // namespace fedshare::model
