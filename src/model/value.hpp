// The coalition-value engine: V(S) from first principles.
//
// Pools the coalition's locations, runs the resource allocator against
// the demand profile, and reports the attained total utility (the
// commercial-scenario profit, P = V = sum_k u_k(x_k), Sec. 4). The
// closed-form values the paper derives for its examples (Sec. 4.1) are
// asserted against this engine in tests — the engine never hard-codes
// them.
#pragma once

#include "alloc/allocation.hpp"
#include "core/coalition.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"

namespace fedshare::model {

/// Full allocation outcome for a coalition facing `demand`.
[[nodiscard]] alloc::AllocationResult coalition_allocation(
    const LocationSpace& space, const DemandProfile& demand,
    game::Coalition coalition);

/// V(S): total utility the coalition can generate (0 for the empty
/// coalition).
[[nodiscard]] double coalition_value(const LocationSpace& space,
                                     const DemandProfile& demand,
                                     game::Coalition coalition);

/// Consumption weights for Eq. 7: units consumed from each facility's
/// resources under the grand coalition's optimal allocation.
[[nodiscard]] std::vector<double> consumption_weights(
    const LocationSpace& space, const DemandProfile& demand);

}  // namespace fedshare::model
