// The coalition-value engine: V(S) from first principles.
//
// Pools the coalition's locations, runs the resource allocator against
// the demand profile, and reports the attained total utility (the
// commercial-scenario profit, P = V = sum_k u_k(x_k), Sec. 4). The
// closed-form values the paper derives for its examples (Sec. 4.1) are
// asserted against this engine in tests — the engine never hard-codes
// them.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "core/coalition.hpp"
#include "core/symmetry.hpp"
#include "lp/simplex.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"

namespace fedshare::model {

/// Full allocation outcome for a coalition facing `demand`.
[[nodiscard]] alloc::AllocationResult coalition_allocation(
    const LocationSpace& space, const DemandProfile& demand,
    game::Coalition coalition);

/// V(S): total utility the coalition can generate (0 for the empty
/// coalition).
[[nodiscard]] double coalition_value(const LocationSpace& space,
                                     const DemandProfile& demand,
                                     game::Coalition coalition);

/// Consumption weights for Eq. 7: units consumed from each facility's
/// resources under the grand coalition's optimal allocation.
[[nodiscard]] std::vector<double> consumption_weights(
    const LocationSpace& space, const DemandProfile& demand);

/// Candidate player symmetry from the static configuration: facilities
/// are grouped into one type when their configs match exactly
/// (num_locations, units_per_location, availability, custom_units —
/// names are ignored) *and* the whole space is disjoint (every facility
/// on its own locations). Overlapping facilities are never grouped —
/// even with equal configs their neighbourhoods can differ — so the
/// identity partition is returned for overlapping spaces. The result is
/// a sound symmetry of both the greedy V(S) and its LP relaxation:
/// swapping two same-type facilities permutes pooled per-location
/// capacities without changing their multiset.
[[nodiscard]] game::PlayerPartition config_symmetry_partition(
    const LocationSpace& space);

/// Options for lp_relaxation_sweep.
struct LpSweepOptions {
  /// Engine, tolerance, iteration cap, and (optional) budget for every
  /// LP in the sweep. The budget is forked per chunk through the exec
  /// layer, honoring the one-unit-per-pivot charging rule.
  lp::SimplexOptions simplex;
  /// Warm-start each coalition's LP from the optimal basis of its
  /// predecessor in the subset lattice (mask & (mask - 1), the coalition
  /// with the lowest member removed). Only effective with
  /// SolverKind::kRevised; the dense engine always solves cold.
  bool warm_start = true;
  /// Exploit player symmetry (core/symmetry.hpp): with kExact the sweep
  /// solves one LP per orbit of config_symmetry_partition() — warm
  /// chained along the quotient lattice — and expands orbit values to
  /// all 2^n masks; kAuto additionally verifies the candidate partition
  /// with the sampling oracle first. kOff (default) keeps the historical
  /// full sweep, byte-identical output included.
  game::SymmetryMode symmetry = game::SymmetryMode::kOff;
  /// Solve each level's warm re-solves through lp::BatchSolver: siblings
  /// whose predecessors left identical basis statuses share one
  /// factorization and a panel FTRAN, with pivot-requiring members
  /// spilling to the ordinary single solve. Results (values, pivot
  /// counts, bases) are bitwise identical to the unbatched sweep; only
  /// effective on warm revised sweeps without a budget or observer.
  bool batch = true;
};

/// Result of lp_relaxation_sweep. `values[mask]` is the LP-relaxation
/// upper bound on coalition `mask`'s allocation utility (exact for the
/// d = 1 demand profiles of the paper's figures); `values[0] == 0`.
struct LpSweepResult {
  std::vector<double> values;  ///< 2^n entries, indexed by coalition mask
  std::uint64_t total_pivots = 0;  ///< simplex iterations across all LPs
  std::uint64_t lps_solved = 0;  ///< LPs actually run (orbits when quotiented)
  std::uint64_t batch_fast = 0;     ///< zero-pivot solves off the shared LU
  std::uint64_t batch_spilled = 0;  ///< batched members that fell back
  bool complete = true;  ///< false when the budget tripped mid-sweep
};

/// Tabulates the allocation-relaxation value of every coalition by
/// sweeping the subset lattice level by level (popcount order): the LP
/// is built once over the grand coalition's location set, each
/// coalition patches in its pooled per-location capacities (uncovered
/// locations get capacity 0, which is equivalent to dropping them), and
/// — with the revised engine — re-solves warm from the basis of the
/// coalition one member smaller. Levels run through exec::parallel_for
/// with a fixed chunk decomposition and per-mask result slots, so the
/// result (values and total_pivots) is bit-identical for any thread
/// count. Throws std::invalid_argument for more than 20 facilities.
[[nodiscard]] LpSweepResult lp_relaxation_sweep(
    const LocationSpace& space, const DemandProfile& demand,
    const LpSweepOptions& options = {});

}  // namespace fedshare::model
