#include "model/location_space.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/rng.hpp"

namespace fedshare::model {

LocationSpace LocationSpace::disjoint(std::vector<FacilityConfig> configs) {
  LocationSpace space;
  int next_location = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].validate();
    space.facilities_.emplace_back(static_cast<int>(i), configs[i]);
    std::vector<int> locs(static_cast<std::size_t>(configs[i].num_locations));
    for (int& l : locs) l = next_location++;
    space.facility_locations_.push_back(std::move(locs));
  }
  space.num_locations_ = next_location;
  return space;
}

LocationSpace LocationSpace::overlapping(std::vector<FacilityConfig> configs,
                                         int universe_size,
                                         std::uint64_t seed) {
  int max_l = 0;
  for (const auto& c : configs) {
    c.validate();
    max_l = std::max(max_l, c.num_locations);
  }
  if (universe_size < max_l) {
    throw std::invalid_argument(
        "LocationSpace::overlapping: universe smaller than a facility's "
        "location count");
  }
  LocationSpace space;
  space.num_locations_ = universe_size;
  sim::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    space.facilities_.emplace_back(static_cast<int>(i), configs[i]);
    space.facility_locations_.push_back(sim::sample_without_replacement(
        rng, universe_size, configs[i].num_locations));
  }
  return space;
}

const Facility& LocationSpace::facility(int id) const {
  if (id < 0 || id >= num_facilities()) {
    throw std::out_of_range("LocationSpace::facility: bad id");
  }
  return facilities_[static_cast<std::size_t>(id)];
}

const std::vector<int>& LocationSpace::locations_of(int facility) const {
  if (facility < 0 || facility >= num_facilities()) {
    throw std::out_of_range("LocationSpace::locations_of: bad id");
  }
  return facility_locations_[static_cast<std::size_t>(facility)];
}

void LocationSpace::check_coalition(game::Coalition coalition) const {
  if (!coalition.is_subset_of(game::Coalition::grand(num_facilities()))) {
    throw std::out_of_range(
        "LocationSpace: coalition contains unknown facilities");
  }
}

int LocationSpace::distinct_locations(game::Coalition coalition) const {
  return static_cast<int>(pooled_location_ids(coalition).size());
}

double LocationSpace::overlap(int facility_a, int facility_b) const {
  const auto& a = locations_of(facility_a);
  const auto& b = locations_of(facility_b);
  if (a.empty()) return 0.0;
  std::vector<int> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(a.size());
}

std::vector<int> LocationSpace::pooled_location_ids(
    game::Coalition coalition) const {
  check_coalition(coalition);
  std::vector<int> ids;
  for (const int member : coalition.members()) {
    const auto& locs = facility_locations_[static_cast<std::size_t>(member)];
    ids.insert(ids.end(), locs.begin(), locs.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

alloc::LocationPool LocationSpace::pool_for(game::Coalition coalition) const {
  check_coalition(coalition);
  std::map<int, double> capacity;  // ordered: pool index = rank of id
  for (const int member : coalition.members()) {
    const auto mi = static_cast<std::size_t>(member);
    const auto& locs = facility_locations_[mi];
    for (std::size_t k = 0; k < locs.size(); ++k) {
      capacity[locs[k]] +=
          facilities_[mi].effective_units_at(static_cast<int>(k));
    }
  }
  alloc::LocationPool pool;
  pool.capacity.reserve(capacity.size());
  for (const auto& [loc, cap] : capacity) pool.capacity.push_back(cap);
  return pool;
}

LocationSpace LocationSpace::with_outages(
    const std::vector<std::vector<bool>>& up) const {
  if (up.size() != facilities_.size()) {
    throw std::invalid_argument(
        "with_outages: need one up-mask per facility");
  }
  LocationSpace degraded;
  degraded.num_locations_ = num_locations_;
  for (std::size_t i = 0; i < facilities_.size(); ++i) {
    const Facility& f = facilities_[i];
    const auto& locs = facility_locations_[i];
    const auto& mask = up[i];
    if (mask.size() != locs.size()) {
      throw std::invalid_argument(
          "with_outages: up-mask size must match the facility's location "
          "count");
    }
    FacilityConfig cfg;
    cfg.name = f.name();
    cfg.availability = 1.0;  // realised: survivors are fully up
    std::vector<int> surviving;
    for (std::size_t k = 0; k < locs.size(); ++k) {
      if (!mask[k]) continue;
      surviving.push_back(locs[k]);
      // Full (availability-free) capacity at the surviving location.
      cfg.custom_units.push_back(f.effective_units_at(static_cast<int>(k)) /
                                 f.availability());
    }
    cfg.num_locations = static_cast<int>(surviving.size());
    degraded.facilities_.emplace_back(static_cast<int>(i), std::move(cfg));
    degraded.facility_locations_.push_back(std::move(surviving));
  }
  return degraded;
}

std::vector<double> LocationSpace::attribute_consumption(
    game::Coalition coalition,
    const std::vector<double>& units_per_location) const {
  check_coalition(coalition);
  const std::vector<int> ids = pooled_location_ids(coalition);
  if (units_per_location.size() != ids.size()) {
    throw std::invalid_argument(
        "attribute_consumption: consumption vector does not match the "
        "coalition's pool");
  }
  // capacity_by_loc[pool index][facility] share.
  std::vector<double> consumed(static_cast<std::size_t>(num_facilities()),
                               0.0);
  // Build per-location contributor lists.
  std::map<int, std::size_t> rank;
  for (std::size_t i = 0; i < ids.size(); ++i) rank[ids[i]] = i;
  std::vector<double> total_cap(ids.size(), 0.0);
  for (const int member : coalition.members()) {
    const auto mi = static_cast<std::size_t>(member);
    const auto& locs = facility_locations_[mi];
    for (std::size_t k = 0; k < locs.size(); ++k) {
      total_cap[rank[locs[k]]] +=
          facilities_[mi].effective_units_at(static_cast<int>(k));
    }
  }
  for (const int member : coalition.members()) {
    const auto mi = static_cast<std::size_t>(member);
    const auto& locs = facility_locations_[mi];
    for (std::size_t k = 0; k < locs.size(); ++k) {
      const std::size_t idx = rank[locs[k]];
      if (total_cap[idx] > 0.0) {
        consumed[mi] +=
            units_per_location[idx] *
            facilities_[mi].effective_units_at(static_cast<int>(k)) /
            total_cap[idx];
      }
    }
  }
  return consumed;
}

}  // namespace fedshare::model
