#include "model/facility.hpp"

#include <cmath>
#include <stdexcept>

namespace fedshare::model {

void FacilityConfig::validate() const {
  if (num_locations < 0) {
    throw std::invalid_argument("FacilityConfig: num_locations must be >= 0");
  }
  if (!std::isfinite(units_per_location) || units_per_location < 0.0) {
    throw std::invalid_argument(
        "FacilityConfig: units_per_location must be >= 0");
  }
  if (!std::isfinite(availability) || availability <= 0.0 ||
      availability > 1.0) {
    throw std::invalid_argument(
        "FacilityConfig: availability must be in (0, 1]");
  }
  if (!custom_units.empty()) {
    if (custom_units.size() != static_cast<std::size_t>(num_locations)) {
      throw std::invalid_argument(
          "FacilityConfig: custom_units must have num_locations entries");
    }
    for (const double u : custom_units) {
      if (!std::isfinite(u) || u < 0.0) {
        throw std::invalid_argument(
            "FacilityConfig: custom_units must be finite and >= 0");
      }
    }
  }
}

Facility::Facility(int id, FacilityConfig config)
    : id_(id), config_(std::move(config)) {
  if (id < 0) {
    throw std::invalid_argument("Facility: id must be >= 0");
  }
  config_.validate();
}

double Facility::effective_units() const noexcept {
  if (config_.custom_units.empty()) {
    return config_.units_per_location * config_.availability;
  }
  if (config_.num_locations == 0) return 0.0;
  double total = 0.0;
  for (const double u : config_.custom_units) total += u;
  return total * config_.availability / config_.num_locations;
}

double Facility::effective_units_at(int local_index) const {
  if (local_index < 0 || local_index >= config_.num_locations) {
    throw std::out_of_range("Facility::effective_units_at: bad index");
  }
  const double units =
      config_.custom_units.empty()
          ? config_.units_per_location
          : config_.custom_units[static_cast<std::size_t>(local_index)];
  return units * config_.availability;
}

double Facility::availability_weight() const noexcept {
  if (config_.custom_units.empty()) {
    return config_.num_locations * config_.units_per_location *
           config_.availability;
  }
  double total = 0.0;
  for (const double u : config_.custom_units) total += u;
  return total * config_.availability;
}

}  // namespace fedshare::model
