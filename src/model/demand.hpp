// Demand modelling (the paper's Sec. 2.2).
//
// Demand is a set of request classes — groups of identical experiments
// characterised by a diversity threshold l, per-location resources r,
// holding time t, and count. The three PlanetLab workload archetypes the
// paper lists (P2P experiment, CDN service, measurement experiment) are
// provided as presets.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"

namespace fedshare::model {

/// Request classes are shared with the allocator.
using alloc::RequestClass;

/// A demand profile: the request classes facing the federation.
struct DemandProfile {
  std::vector<RequestClass> classes;

  /// Single experiment with threshold l, shape d, resources r per
  /// location (the Fig. 4/5 setting).
  static DemandProfile single_experiment(double min_locations,
                                         double exponent = 1.0,
                                         double units_per_location = 1.0);

  /// `count` identical experiments (the Fig. 8/9 setting).
  static DemandProfile uniform(double count, double min_locations,
                               double exponent = 1.0,
                               double units_per_location = 1.0);

  /// Demand guaranteed to exceed any capacity in this library's benches
  /// (the Fig. 6/7 "enough in number to fill the system's capacity").
  static DemandProfile saturating(double min_locations, double exponent = 1.0,
                                  double units_per_location = 1.0);

  /// Total requested experiments across classes.
  [[nodiscard]] double total_count() const noexcept;

  /// Throws std::invalid_argument if any class is invalid.
  void validate() const;
};

/// Count used by saturating(): large enough to exceed every bench's
/// capacity while staying exactly representable.
inline constexpr double kSaturatingCount = 1e9;

/// Sec. 2.3.1 archetype: P2P experiment (l=40, r=1, t=0.1).
[[nodiscard]] RequestClass p2p_experiment(double count = 1.0);

/// Sec. 2.3.1 archetype: CDN service (l=100, r=4, t=1).
[[nodiscard]] RequestClass cdn_service(double count = 1.0);

/// Sec. 2.3.1 archetype: measurement experiment (l=500, r=2, t=0.4).
[[nodiscard]] RequestClass measurement_experiment(double count = 1.0);

}  // namespace fedshare::model
