#include "model/hierarchy.hpp"

#include <stdexcept>

#include "core/shapley.hpp"
#include "model/value.hpp"

namespace fedshare::model {

namespace {

LocationSpace flatten(const std::vector<Region>& regions) {
  std::vector<FacilityConfig> configs;
  for (const auto& region : regions) {
    if (region.members.empty()) {
      throw std::invalid_argument(
          "HierarchicalFederation: region with no members");
    }
    for (const auto& member : region.members) configs.push_back(member);
  }
  if (configs.empty()) {
    throw std::invalid_argument("HierarchicalFederation: no regions");
  }
  return LocationSpace::disjoint(configs);
}

}  // namespace

HierarchicalFederation::HierarchicalFederation(std::vector<Region> regions,
                                               DemandProfile demand)
    : space_(flatten(regions)), demand_(std::move(demand)) {
  demand_.validate();
  int next = 0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    region_names_.push_back(regions[r].name);
    game::Coalition members;
    for (std::size_t k = 0; k < regions[r].members.size(); ++k) {
      members = members.with(next);
      region_of_.push_back(r);
      ++next;
    }
    structure_.unions.push_back(members);
  }
  structure_.validate(num_facilities());
}

const std::string& HierarchicalFederation::region_name(
    std::size_t index) const {
  if (index >= region_names_.size()) {
    throw std::out_of_range("HierarchicalFederation: bad region index");
  }
  return region_names_[index];
}

std::size_t HierarchicalFederation::region_of(int facility) const {
  if (facility < 0 || facility >= num_facilities()) {
    throw std::out_of_range("HierarchicalFederation: bad facility id");
  }
  return region_of_[static_cast<std::size_t>(facility)];
}

game::TabularGame HierarchicalFederation::build_game() const {
  const game::FunctionGame fn(num_facilities(), [this](game::Coalition s) {
    return coalition_value(space_, demand_, s);
  });
  return game::tabulate(fn);
}

game::TabularGame HierarchicalFederation::build_region_game() const {
  return game::quotient_game(build_game(), structure_);
}

std::vector<double> HierarchicalFederation::region_shares() const {
  return game::normalize_shares(game::shapley_exact(build_region_game()));
}

std::vector<double> HierarchicalFederation::owen_shares() const {
  return game::normalize_shares(game::owen_value(build_game(), structure_));
}

std::vector<double> HierarchicalFederation::flat_shapley_shares() const {
  return game::normalize_shares(game::shapley_exact(build_game()));
}

}  // namespace fedshare::model
