// User utility functions (the paper's Eq. 1 and Fig. 2).
//
// The satisfaction of an experiment assigned x distinct locations:
// u(x) = x^d if x >= l, else 0 — zero below the diversity threshold l,
// then linear (d = 1), concave (d < 1) or convex (d > 1).
#pragma once

#include <memory>
#include <string>

namespace fedshare::model {

/// Abstract utility-of-diversity function u(x) on x >= 0.
class Utility {
 public:
  virtual ~Utility() = default;

  /// Utility of x distinct locations; must be >= 0 and return 0 at x = 0.
  [[nodiscard]] virtual double value(double x) const = 0;

  /// Short description for reports, e.g. "step-power(l=50, d=1)".
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// The paper's threshold-power utility (Eq. 1).
class ThresholdUtility final : public Utility {
 public:
  /// threshold l >= 0, exponent d > 0 (throws std::invalid_argument).
  ThresholdUtility(double threshold, double exponent);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double threshold_;
  double exponent_;
};

}  // namespace fedshare::model
