// Stochastic coalition values from the discrete-event simulator.
//
// The paper's static model assumes experiments arrive together and are
// allocated once; its future-work section (Sec. 6) points to loss-
// network demand models instead. simulated_game() builds V(S) as the
// long-run utility *rate* each coalition sustains under Poisson arrivals
// with real holding times — statistical multiplexing included — so the
// Shapley machinery can run unchanged on the stochastic game.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "model/location_space.hpp"
#include "sim/multiplex_sim.hpp"

namespace fedshare::model {

/// How demand scales with the coalition being simulated.
enum class ArrivalScaling {
  /// The traffic is one external customer stream: every coalition faces
  /// the same arrival rates (the commercial scenario).
  kExternal,
  /// Each facility brings its own users: a coalition of k facilities
  /// faces k times the per-facility rates (the P2P scenario, where the
  /// multiplexing gain of pooling independent streams shows up).
  kPerFacility,
};

/// Tabulates V(S) = utility rate of the DES run on coalition S's pool.
/// Each coalition uses the same config (and so the same seed — paired
/// randomness reduces the variance of coalition comparisons). The empty
/// coalition is fixed at 0. Requires <= 12 facilities (2^n simulations).
[[nodiscard]] game::TabularGame simulated_game(
    const LocationSpace& space, const std::vector<sim::TrafficClass>& traffic,
    const sim::SimConfig& config,
    ArrivalScaling scaling = ArrivalScaling::kExternal);

/// Multiplexing gain of the grand coalition: V(N) divided by the sum of
/// singleton values (> 1 means federation beats isolation). Returns 1
/// when no facility generates value alone and the federation doesn't
/// either; +infinity if only the federation does.
[[nodiscard]] double multiplexing_gain(const game::Game& simulated);

}  // namespace fedshare::model
