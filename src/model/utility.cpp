#include "model/utility.hpp"

#include <cmath>
#include <stdexcept>

#include "io/table.hpp"

namespace fedshare::model {

ThresholdUtility::ThresholdUtility(double threshold, double exponent)
    : threshold_(threshold), exponent_(exponent) {
  if (!std::isfinite(threshold) || threshold < 0.0) {
    throw std::invalid_argument("ThresholdUtility: threshold must be >= 0");
  }
  if (!std::isfinite(exponent) || exponent <= 0.0) {
    throw std::invalid_argument("ThresholdUtility: exponent must be > 0");
  }
}

double ThresholdUtility::value(double x) const {
  if (!std::isfinite(x) || x < 0.0) {
    throw std::invalid_argument("ThresholdUtility::value: x must be >= 0");
  }
  if (x < threshold_ || x == 0.0) return 0.0;
  return std::pow(x, exponent_);
}

std::string ThresholdUtility::describe() const {
  return "step-power(l=" + io::format_double(threshold_, 0) +
         ", d=" + io::format_double(exponent_, 2) + ")";
}

}  // namespace fedshare::model
