#include "model/stochastic_value.hpp"

#include <limits>
#include <stdexcept>

namespace fedshare::model {

game::TabularGame simulated_game(const LocationSpace& space,
                                 const std::vector<sim::TrafficClass>& traffic,
                                 const sim::SimConfig& config,
                                 ArrivalScaling scaling) {
  const int n = space.num_facilities();
  if (n > 12) {
    throw std::invalid_argument(
        "simulated_game: at most 12 facilities (2^n simulations)");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count, 0.0);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    const auto coalition = game::Coalition::from_bits(mask);
    const auto pool = space.pool_for(coalition);
    if (pool.num_locations() == 0) continue;
    std::vector<sim::TrafficClass> scaled = traffic;
    if (scaling == ArrivalScaling::kPerFacility) {
      for (auto& tc : scaled) tc.arrival_rate *= coalition.size();
    }
    values[mask] =
        sim::simulate_multiplexing(pool, scaled, config).utility_rate;
  }
  return game::TabularGame(n, std::move(values));
}

double multiplexing_gain(const game::Game& simulated) {
  const double grand = simulated.grand_value();
  const double solo = game::standalone_total(simulated);
  if (solo <= 0.0) {
    return grand > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return grand / solo;
}

}  // namespace fedshare::model
