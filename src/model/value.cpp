#include "model/value.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "alloc/greedy.hpp"
#include "alloc/lp_relax.hpp"
#include "exec/pool.hpp"
#include "lp/batch_solver.hpp"
#include "lp/revised_simplex.hpp"

namespace fedshare::model {

alloc::AllocationResult coalition_allocation(const LocationSpace& space,
                                             const DemandProfile& demand,
                                             game::Coalition coalition) {
  demand.validate();
  const alloc::LocationPool pool = space.pool_for(coalition);
  return alloc::allocate_greedy(pool, demand.classes);
}

double coalition_value(const LocationSpace& space, const DemandProfile& demand,
                       game::Coalition coalition) {
  if (coalition.empty()) return 0.0;
  return coalition_allocation(space, demand, coalition).total_utility;
}

std::vector<double> consumption_weights(const LocationSpace& space,
                                        const DemandProfile& demand) {
  const game::Coalition grand =
      game::Coalition::grand(space.num_facilities());
  const alloc::AllocationResult result =
      coalition_allocation(space, demand, grand);
  return space.attribute_consumption(grand, result.units_per_location);
}

namespace {

int popcount32(std::uint32_t v) noexcept {
  int c = 0;
  while (v != 0) {
    v &= v - 1;
    ++c;
  }
  return c;
}

bool same_facility_config(const FacilityConfig& a, const FacilityConfig& b) {
  return a.num_locations == b.num_locations &&
         a.units_per_location == b.units_per_location &&
         a.availability == b.availability && a.custom_units == b.custom_units;
}

// Batched sweeps hand this many sibling groups to one BatchSolver per
// worker chunk — large enough to amortize the solver's engine clones
// and frame cache, small enough to keep levels load-balanced.
constexpr std::uint64_t kGroupChunk = 8;

}  // namespace

game::PlayerPartition config_symmetry_partition(const LocationSpace& space) {
  const int n = space.num_facilities();
  // Disjointness gate: grouping is only sound when no two facilities
  // share a location (then swapping equal-config members permutes the
  // pooled capacity vector without changing its multiset).
  std::size_t own_locations = 0;
  for (int i = 0; i < n; ++i) {
    own_locations += space.locations_of(i).size();
  }
  if (n > 0 &&
      static_cast<std::size_t>(
          space.distinct_locations(game::Coalition::grand(n))) !=
          own_locations) {
    return game::PlayerPartition::identity(n);
  }
  std::vector<int> type_of(static_cast<std::size_t>(n), 0);
  std::vector<int> anchors;  // first facility of each type
  for (int i = 0; i < n; ++i) {
    int label = -1;
    for (std::size_t t = 0; t < anchors.size(); ++t) {
      if (same_facility_config(space.facility(i).config(),
                               space.facility(anchors[t]).config())) {
        label = static_cast<int>(t);
        break;
      }
    }
    if (label < 0) {
      label = static_cast<int>(anchors.size());
      anchors.push_back(i);
    }
    type_of[static_cast<std::size_t>(i)] = label;
  }
  return game::PlayerPartition::from_type_of(type_of);
}

LpSweepResult lp_relaxation_sweep(const LocationSpace& space,
                                  const DemandProfile& demand,
                                  const LpSweepOptions& options) {
  demand.validate();
  const int n = space.num_facilities();
  if (n > 20) {
    throw std::invalid_argument(
        "lp_relaxation_sweep: more than 20 facilities");
  }
  const std::size_t count = std::size_t{1} << n;
  LpSweepResult result;
  result.values.assign(count, 0.0);
  if (n == 0) return result;

  // Optional symmetry quotient: one LP per orbit instead of one per
  // mask. Detection is static (config equality + disjointness); kAuto
  // re-checks the candidate with the sampling oracle on the greedy V.
  game::PlayerPartition partition = game::PlayerPartition::identity(n);
  if (options.symmetry != game::SymmetryMode::kOff) {
    partition = config_symmetry_partition(space);
    if (options.symmetry == game::SymmetryMode::kAuto &&
        !partition.is_trivial()) {
      const game::FunctionGame raw(n, [&](game::Coalition s) {
        return coalition_value(space, demand, s);
      });
      partition = game::verified_partition(raw, partition);
    }
  }

  const game::Coalition grand = game::Coalition::grand(n);
  const std::vector<int> ids = space.pooled_location_ids(grand);
  const std::size_t num_loc = ids.size();
  alloc::RelaxationTemplate tmpl(num_loc, demand.classes);
  if (tmpl.empty()) return result;

  // Position of each location id within the grand pool, and each
  // facility's capacity contribution at those positions. A coalition's
  // capacity vector is the sum of its members' contributions (uncovered
  // locations stay 0, equivalent to dropping them).
  std::vector<std::size_t> pos_of(
      static_cast<std::size_t>(space.num_locations()), 0);
  for (std::size_t p = 0; p < num_loc; ++p) {
    pos_of[static_cast<std::size_t>(ids[p])] = p;
  }
  struct Contribution {
    std::size_t pos;
    double units;
  };
  std::vector<std::vector<Contribution>> contrib(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& locs = space.locations_of(i);
    const Facility& fac = space.facility(i);
    auto& list = contrib[static_cast<std::size_t>(i)];
    list.reserve(locs.size());
    for (std::size_t k = 0; k < locs.size(); ++k) {
      list.push_back({pos_of[static_cast<std::size_t>(locs[k])],
                      fac.effective_units_at(static_cast<int>(k))});
    }
  }

  const bool revised = options.simplex.solver == lp::SolverKind::kRevised;
  const bool warm = revised && options.warm_start;
  // Batched level solving applies to the unbudgeted, unobserved warm
  // sweep (budgets need per-chunk charging order, observers need a
  // per-LP mirror — both spill to the legacy path).
  const bool batch = warm && options.batch &&
                     options.simplex.budget == nullptr &&
                     options.simplex.observer == nullptr;
  lp::SimplexOptions chunk_options = options.simplex;
  chunk_options.budget = nullptr;  // budgets are forked per chunk below
  // Template engine cloned per coalition: the clone carries the
  // presolved computational form, so per-mask work is patch + solve.
  std::optional<lp::RevisedSimplex> proto;
  if (revised) proto.emplace(tmpl.problem(), chunk_options);

  if (!partition.is_trivial()) {
    // Quotient sweep: solve each orbit's canonical representative, warm
    // chained along the quotient lattice, then expand orbit values back
    // to all 2^n masks. Per-orbit result slots keep the exec determinism
    // contract, exactly like the per-mask sweep below.
    const game::OrbitIndex index(partition);
    const std::uint64_t orbits = index.orbit_count();
    std::vector<double> orbit_values(orbits, 0.0);
    std::vector<std::uint64_t> orbit_pivots(orbits, 0);
    std::vector<unsigned char> orbit_solved(orbits, 0);
    orbit_solved[0] = 1;
    std::vector<lp::Basis> orbit_bases(warm ? orbits : 0);

    const auto orbit_caps_into = [&](std::uint64_t orbit,
                                     std::vector<double>& caps) {
      const std::uint64_t rep = index.representative(orbit);
      caps.assign(num_loc, 0.0);
      for (int i = 0; i < n; ++i) {
        if (((rep >> i) & 1u) == 0) continue;
        for (const Contribution& c : contrib[static_cast<std::size_t>(i)]) {
          caps[c.pos] += c.units;
        }
      }
    };
    const auto orbit_caps = [&](std::uint64_t orbit) {
      std::vector<double> caps;
      orbit_caps_into(orbit, caps);
      return caps;
    };
    // Warm chain: drop one member of the lowest populated type — the
    // quotient analogue of mask & (mask - 1). Representatives take
    // the lowest-indexed members, so the predecessor's representative
    // is a strict subset of this one.
    const auto orbit_pred = [&](std::uint64_t orbit) {
      for (int t = 0; t < index.num_types(); ++t) {
        if (const auto p = index.predecessor(orbit, t)) return *p;
      }
      return std::uint64_t{0};
    };

    const auto process_orbit = [&](std::uint64_t orbit,
                                   const runtime::ComputeBudget* budget) {
      const std::vector<double> caps = orbit_caps(orbit);
      const std::uint64_t pred = orbit_pred(orbit);
      lp::Solution sol;
      if (revised) {
        lp::RevisedSimplex engine = *proto;
        engine.set_budget(budget);
        engine.apply(tmpl.capacity_patch(caps));
        if (warm && !orbit_bases[pred].empty()) {
          sol = engine.solve_from_basis(orbit_bases[pred]);
        } else {
          sol = engine.solve();
        }
        if (warm && sol.optimal()) orbit_bases[orbit] = engine.basis();
      } else {
        lp::Problem prob = tmpl.problem();
        tmpl.apply_capacities(prob, caps);
        lp::SimplexOptions so = chunk_options;
        so.budget = budget;
        sol = lp::solve(prob, so);
      }
      orbit_pivots[orbit] = sol.pivots;
      if (sol.optimal()) {
        orbit_values[orbit] = sol.objective;
        orbit_solved[orbit] = 1;
      }
      return sol.status != lp::SolveStatus::kBudgetExhausted;
    };

    std::vector<std::vector<std::uint64_t>> orbit_levels(
        static_cast<std::size_t>(n) + 1);
    for (std::uint64_t orbit = 1; orbit < orbits; ++orbit) {
      orbit_levels[static_cast<std::size_t>(index.level(orbit))].push_back(
          orbit);
    }
    constexpr std::uint64_t kOrbitChunk = 4;
    bool cancelled = false;
    for (int lvl = 1; lvl <= n && !cancelled; ++lvl) {
      const auto& os = orbit_levels[static_cast<std::size_t>(lvl)];
      if (options.simplex.budget != nullptr) {
        cancelled = !exec::parallel_for_budgeted(
            0, os.size(), kOrbitChunk, *options.simplex.budget,
            [&](const exec::ChunkRange& r,
                const runtime::ComputeBudget& child) {
              for (std::uint64_t k = r.begin; k < r.end; ++k) {
                if (!process_orbit(os[k], &child)) return false;
              }
              return true;
            });
      } else if (batch) {
        // Group this level's orbits by their predecessor's basis
        // statuses; each group shares one factorization through a
        // BatchSolver. A level has few distinct status vectors, so a
        // linear scan over group representatives (one byte-compare
        // each) beats a keyed map; groups run in first-appearance
        // order with members in ascending orbit id, both deterministic.
        // Orbits whose predecessor has no basis solve cold on the
        // legacy path.
        std::vector<const lp::Basis*> reps;
        std::vector<std::vector<std::uint64_t>> groups;
        std::vector<std::uint64_t> cold;
        for (const std::uint64_t orbit : os) {
          const lp::Basis& pb = orbit_bases[orbit_pred(orbit)];
          if (pb.empty()) {
            cold.push_back(orbit);
            continue;
          }
          std::size_t g = 0;
          while (g < reps.size() && reps[g]->status != pb.status) ++g;
          if (g == reps.size()) {
            reps.push_back(&pb);
            groups.emplace_back();
          }
          groups[g].push_back(orbit);
        }
        exec::parallel_for(0, cold.size(), kOrbitChunk,
                           [&](const exec::ChunkRange& r) {
                             for (std::uint64_t k = r.begin; k < r.end; ++k) {
                               process_orbit(cold[k], nullptr);
                             }
                             return true;
                           });
        std::vector<std::uint64_t> fast_slots(groups.size(), 0);
        std::vector<std::uint64_t> spill_slots(groups.size(), 0);
        exec::parallel_for(
            0, groups.size(), kGroupChunk, [&](const exec::ChunkRange& r) {
              // One solver (three engine clones) per chunk, not per
              // group: solve_group re-adopts the start basis and
              // restores the prototype rhs on entry, so reuse is
              // bitwise inert — it only recycles allocations and the
              // frame cache.
              lp::BatchSolver solver(*proto);
              std::vector<lp::ProblemPatch> patches;
              std::vector<lp::Solution> sols;
              std::vector<lp::Basis> snaps;
              std::vector<double> caps;
              for (std::uint64_t g = r.begin; g < r.end; ++g) {
                const std::vector<std::uint64_t>& grp = groups[g];
                const lp::Basis& start = orbit_bases[orbit_pred(grp.front())];
                patches.resize(grp.size());
                for (std::size_t i = 0; i < grp.size(); ++i) {
                  orbit_caps_into(grp[i], caps);
                  tmpl.capacity_patch_into(caps, patches[i]);
                }
                const std::uint64_t fast0 = solver.stats().fast;
                const std::uint64_t spill0 = solver.stats().spilled;
                solver.solve_group(start, patches, sols, &snaps,
                                   /*objective_only=*/true);
                for (std::size_t i = 0; i < grp.size(); ++i) {
                  const std::uint64_t orbit = grp[i];
                  orbit_pivots[orbit] = sols[i].pivots;
                  if (sols[i].optimal()) {
                    orbit_values[orbit] = sols[i].objective;
                    orbit_solved[orbit] = 1;
                    orbit_bases[orbit] = std::move(snaps[i]);
                  }
                }
                fast_slots[g] = solver.stats().fast - fast0;
                spill_slots[g] = solver.stats().spilled - spill0;
              }
              return true;
            });
        for (std::size_t g = 0; g < groups.size(); ++g) {
          result.batch_fast += fast_slots[g];
          result.batch_spilled += spill_slots[g];
        }
      } else {
        exec::parallel_for(0, os.size(), kOrbitChunk,
                           [&](const exec::ChunkRange& r) {
                             for (std::uint64_t k = r.begin; k < r.end;
                                  ++k) {
                               process_orbit(os[k], nullptr);
                             }
                             return true;
                           });
      }
    }

    for (std::uint64_t orbit = 0; orbit < orbits; ++orbit) {
      result.total_pivots += orbit_pivots[orbit];
      if (orbit_solved[orbit] == 0) {
        result.complete = false;
      } else if (orbit != 0) {
        ++result.lps_solved;
      }
    }
    exec::parallel_for(
        0, static_cast<std::uint64_t>(count), 4096,
        [&](const exec::ChunkRange& r) {
          for (std::uint64_t mask = r.begin; mask < r.end; ++mask) {
            result.values[mask] = orbit_values[index.orbit_of(mask)];
          }
          return true;
        });
    return result;
  }

  // Per-mask result slots keep the level sweep free of shared mutable
  // state (the exec determinism contract): values, pivot counts, and
  // warm-start bases are each written by exactly one mask.
  std::vector<std::uint64_t> pivots(count, 0);
  std::vector<unsigned char> solved(count, 0);
  solved[0] = 1;
  std::vector<lp::Basis> bases(warm ? count : 0);

  const auto mask_caps_into = [&](std::uint32_t mask,
                                  std::vector<double>& caps) {
    caps.assign(num_loc, 0.0);
    for (int i = 0; i < n; ++i) {
      if (((mask >> i) & 1u) == 0) continue;
      for (const Contribution& c : contrib[static_cast<std::size_t>(i)]) {
        caps[c.pos] += c.units;
      }
    }
  };
  const auto mask_caps = [&](std::uint32_t mask) {
    std::vector<double> caps;
    mask_caps_into(mask, caps);
    return caps;
  };

  const auto process = [&](std::uint32_t mask,
                           const runtime::ComputeBudget* budget) {
    const std::vector<double> caps = mask_caps(mask);
    lp::Solution sol;
    if (revised) {
      lp::RevisedSimplex engine = *proto;
      engine.set_budget(budget);
      engine.apply(tmpl.capacity_patch(caps));
      const std::uint32_t pred = mask & (mask - 1);
      if (warm && !bases[pred].empty()) {
        sol = engine.solve_from_basis(bases[pred]);
      } else {
        sol = engine.solve();
      }
      if (warm && sol.optimal()) bases[mask] = engine.basis();
    } else {
      lp::Problem prob = tmpl.problem();
      tmpl.apply_capacities(prob, caps);
      lp::SimplexOptions so = chunk_options;
      so.budget = budget;
      sol = lp::solve(prob, so);
    }
    pivots[mask] = sol.pivots;
    if (sol.optimal()) {
      result.values[mask] = sol.objective;
      solved[mask] = 1;
    }
    return sol.status != lp::SolveStatus::kBudgetExhausted;
  };

  // Popcount-level sweep: every coalition's lattice predecessor
  // (mask & (mask - 1)) sits one level down, so each parallel_for
  // barrier guarantees the warm-start basis is ready before any reader.
  std::vector<std::vector<std::uint32_t>> levels(
      static_cast<std::size_t>(n) + 1);
  for (std::uint32_t mask = 1; mask < count; ++mask) {
    levels[static_cast<std::size_t>(popcount32(mask))].push_back(mask);
  }
  constexpr std::uint64_t kChunk = 4;
  bool cancelled = false;
  for (int lvl = 1; lvl <= n && !cancelled; ++lvl) {
    const auto& ms = levels[static_cast<std::size_t>(lvl)];
    if (options.simplex.budget != nullptr) {
      cancelled = !exec::parallel_for_budgeted(
          0, ms.size(), kChunk, *options.simplex.budget,
          [&](const exec::ChunkRange& r, const runtime::ComputeBudget& child) {
            for (std::uint64_t k = r.begin; k < r.end; ++k) {
              if (!process(ms[k], &child)) return false;
            }
            return true;
          });
    } else if (batch) {
      // Same grouping as the quotient branch: siblings whose lattice
      // predecessors left identical basis statuses share one
      // factorization. A linear representative scan replaces a keyed
      // map — levels have few distinct status vectors and the byte
      // compare is cheaper than hashing/ordering thousands of keys.
      // Cold masks take the legacy path.
      std::vector<const lp::Basis*> reps;
      std::vector<std::vector<std::uint32_t>> groups;
      std::vector<std::uint32_t> cold;
      for (const std::uint32_t mask : ms) {
        const lp::Basis& pb = bases[mask & (mask - 1)];
        if (pb.empty()) {
          cold.push_back(mask);
          continue;
        }
        std::size_t g = 0;
        while (g < reps.size() && reps[g]->status != pb.status) ++g;
        if (g == reps.size()) {
          reps.push_back(&pb);
          groups.emplace_back();
        }
        groups[g].push_back(mask);
      }
      exec::parallel_for(0, cold.size(), kChunk,
                         [&](const exec::ChunkRange& r) {
                           for (std::uint64_t k = r.begin; k < r.end; ++k) {
                             process(cold[k], nullptr);
                           }
                           return true;
                         });
      std::vector<std::uint64_t> fast_slots(groups.size(), 0);
      std::vector<std::uint64_t> spill_slots(groups.size(), 0);
      exec::parallel_for(
          0, groups.size(), kGroupChunk, [&](const exec::ChunkRange& r) {
            // One solver per chunk (see the quotient branch): reuse is
            // bitwise inert, it only recycles allocations and the
            // frame cache.
            lp::BatchSolver solver(*proto);
            std::vector<lp::ProblemPatch> patches;
            std::vector<lp::Solution> sols;
            std::vector<lp::Basis> snaps;
            std::vector<double> caps;
            for (std::uint64_t g = r.begin; g < r.end; ++g) {
              const std::vector<std::uint32_t>& grp = groups[g];
              const lp::Basis& start = bases[grp.front() & (grp.front() - 1)];
              patches.resize(grp.size());
              for (std::size_t i = 0; i < grp.size(); ++i) {
                mask_caps_into(grp[i], caps);
                tmpl.capacity_patch_into(caps, patches[i]);
              }
              const std::uint64_t fast0 = solver.stats().fast;
              const std::uint64_t spill0 = solver.stats().spilled;
              solver.solve_group(start, patches, sols, &snaps,
                                 /*objective_only=*/true);
              for (std::size_t i = 0; i < grp.size(); ++i) {
                const std::uint32_t mask = grp[i];
                pivots[mask] = sols[i].pivots;
                if (sols[i].optimal()) {
                  result.values[mask] = sols[i].objective;
                  solved[mask] = 1;
                  bases[mask] = std::move(snaps[i]);
                }
              }
              fast_slots[g] = solver.stats().fast - fast0;
              spill_slots[g] = solver.stats().spilled - spill0;
            }
            return true;
          });
      for (std::size_t g = 0; g < groups.size(); ++g) {
        result.batch_fast += fast_slots[g];
        result.batch_spilled += spill_slots[g];
      }
    } else {
      exec::parallel_for(0, ms.size(), kChunk,
                         [&](const exec::ChunkRange& r) {
                           for (std::uint64_t k = r.begin; k < r.end; ++k) {
                             process(ms[k], nullptr);
                           }
                           return true;
                         });
    }
  }

  for (std::size_t mask = 0; mask < count; ++mask) {
    result.total_pivots += pivots[mask];
    if (solved[mask] == 0) {
      result.complete = false;
    } else if (mask != 0) {
      ++result.lps_solved;
    }
  }
  return result;
}

}  // namespace fedshare::model
