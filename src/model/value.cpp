#include "model/value.hpp"

#include "alloc/greedy.hpp"

namespace fedshare::model {

alloc::AllocationResult coalition_allocation(const LocationSpace& space,
                                             const DemandProfile& demand,
                                             game::Coalition coalition) {
  demand.validate();
  const alloc::LocationPool pool = space.pool_for(coalition);
  return alloc::allocate_greedy(pool, demand.classes);
}

double coalition_value(const LocationSpace& space, const DemandProfile& demand,
                       game::Coalition coalition) {
  if (coalition.empty()) return 0.0;
  return coalition_allocation(space, demand, coalition).total_utility;
}

std::vector<double> consumption_weights(const LocationSpace& space,
                                        const DemandProfile& demand) {
  const game::Coalition grand =
      game::Coalition::grand(space.num_facilities());
  const alloc::AllocationResult result =
      coalition_allocation(space, demand, grand);
  return space.attribute_consumption(grand, result.units_per_location);
}

}  // namespace fedshare::model
