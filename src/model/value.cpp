#include "model/value.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "alloc/greedy.hpp"
#include "alloc/lp_relax.hpp"
#include "exec/pool.hpp"
#include "lp/revised_simplex.hpp"

namespace fedshare::model {

alloc::AllocationResult coalition_allocation(const LocationSpace& space,
                                             const DemandProfile& demand,
                                             game::Coalition coalition) {
  demand.validate();
  const alloc::LocationPool pool = space.pool_for(coalition);
  return alloc::allocate_greedy(pool, demand.classes);
}

double coalition_value(const LocationSpace& space, const DemandProfile& demand,
                       game::Coalition coalition) {
  if (coalition.empty()) return 0.0;
  return coalition_allocation(space, demand, coalition).total_utility;
}

std::vector<double> consumption_weights(const LocationSpace& space,
                                        const DemandProfile& demand) {
  const game::Coalition grand =
      game::Coalition::grand(space.num_facilities());
  const alloc::AllocationResult result =
      coalition_allocation(space, demand, grand);
  return space.attribute_consumption(grand, result.units_per_location);
}

namespace {

int popcount32(std::uint32_t v) noexcept {
  int c = 0;
  while (v != 0) {
    v &= v - 1;
    ++c;
  }
  return c;
}

}  // namespace

LpSweepResult lp_relaxation_sweep(const LocationSpace& space,
                                  const DemandProfile& demand,
                                  const LpSweepOptions& options) {
  demand.validate();
  const int n = space.num_facilities();
  if (n > 20) {
    throw std::invalid_argument(
        "lp_relaxation_sweep: more than 20 facilities");
  }
  const std::size_t count = std::size_t{1} << n;
  LpSweepResult result;
  result.values.assign(count, 0.0);
  if (n == 0) return result;

  const game::Coalition grand = game::Coalition::grand(n);
  const std::vector<int> ids = space.pooled_location_ids(grand);
  const std::size_t num_loc = ids.size();
  alloc::RelaxationTemplate tmpl(num_loc, demand.classes);
  if (tmpl.empty()) return result;

  // Position of each location id within the grand pool, and each
  // facility's capacity contribution at those positions. A coalition's
  // capacity vector is the sum of its members' contributions (uncovered
  // locations stay 0, equivalent to dropping them).
  std::vector<std::size_t> pos_of(
      static_cast<std::size_t>(space.num_locations()), 0);
  for (std::size_t p = 0; p < num_loc; ++p) {
    pos_of[static_cast<std::size_t>(ids[p])] = p;
  }
  struct Contribution {
    std::size_t pos;
    double units;
  };
  std::vector<std::vector<Contribution>> contrib(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& locs = space.locations_of(i);
    const Facility& fac = space.facility(i);
    auto& list = contrib[static_cast<std::size_t>(i)];
    list.reserve(locs.size());
    for (std::size_t k = 0; k < locs.size(); ++k) {
      list.push_back({pos_of[static_cast<std::size_t>(locs[k])],
                      fac.effective_units_at(static_cast<int>(k))});
    }
  }

  const bool revised = options.simplex.solver == lp::SolverKind::kRevised;
  const bool warm = revised && options.warm_start;
  lp::SimplexOptions chunk_options = options.simplex;
  chunk_options.budget = nullptr;  // budgets are forked per chunk below
  // Template engine cloned per coalition: the clone carries the
  // presolved computational form, so per-mask work is patch + solve.
  std::optional<lp::RevisedSimplex> proto;
  if (revised) proto.emplace(tmpl.problem(), chunk_options);

  // Per-mask result slots keep the level sweep free of shared mutable
  // state (the exec determinism contract): values, pivot counts, and
  // warm-start bases are each written by exactly one mask.
  std::vector<std::uint64_t> pivots(count, 0);
  std::vector<unsigned char> solved(count, 0);
  solved[0] = 1;
  std::vector<lp::Basis> bases(warm ? count : 0);

  const auto process = [&](std::uint32_t mask,
                           const runtime::ComputeBudget* budget) {
    std::vector<double> caps(num_loc, 0.0);
    for (int i = 0; i < n; ++i) {
      if (((mask >> i) & 1u) == 0) continue;
      for (const Contribution& c : contrib[static_cast<std::size_t>(i)]) {
        caps[c.pos] += c.units;
      }
    }
    lp::Solution sol;
    if (revised) {
      lp::RevisedSimplex engine = *proto;
      engine.set_budget(budget);
      engine.apply(tmpl.capacity_patch(caps));
      const std::uint32_t pred = mask & (mask - 1);
      if (warm && !bases[pred].empty()) {
        sol = engine.solve_from_basis(bases[pred]);
      } else {
        sol = engine.solve();
      }
      if (warm && sol.optimal()) bases[mask] = engine.basis();
    } else {
      lp::Problem prob = tmpl.problem();
      tmpl.apply_capacities(prob, caps);
      lp::SimplexOptions so = chunk_options;
      so.budget = budget;
      sol = lp::solve(prob, so);
    }
    pivots[mask] = sol.pivots;
    if (sol.optimal()) {
      result.values[mask] = sol.objective;
      solved[mask] = 1;
    }
    return sol.status != lp::SolveStatus::kBudgetExhausted;
  };

  // Popcount-level sweep: every coalition's lattice predecessor
  // (mask & (mask - 1)) sits one level down, so each parallel_for
  // barrier guarantees the warm-start basis is ready before any reader.
  std::vector<std::vector<std::uint32_t>> levels(
      static_cast<std::size_t>(n) + 1);
  for (std::uint32_t mask = 1; mask < count; ++mask) {
    levels[static_cast<std::size_t>(popcount32(mask))].push_back(mask);
  }
  constexpr std::uint64_t kChunk = 4;
  bool cancelled = false;
  for (int lvl = 1; lvl <= n && !cancelled; ++lvl) {
    const auto& ms = levels[static_cast<std::size_t>(lvl)];
    if (options.simplex.budget != nullptr) {
      cancelled = !exec::parallel_for_budgeted(
          0, ms.size(), kChunk, *options.simplex.budget,
          [&](const exec::ChunkRange& r, const runtime::ComputeBudget& child) {
            for (std::uint64_t k = r.begin; k < r.end; ++k) {
              if (!process(ms[k], &child)) return false;
            }
            return true;
          });
    } else {
      exec::parallel_for(0, ms.size(), kChunk,
                         [&](const exec::ChunkRange& r) {
                           for (std::uint64_t k = r.begin; k < r.end; ++k) {
                             process(ms[k], nullptr);
                           }
                           return true;
                         });
    }
  }

  for (std::size_t mask = 0; mask < count; ++mask) {
    result.total_pivots += pivots[mask];
    if (solved[mask] == 0) result.complete = false;
  }
  return result;
}

}  // namespace fedshare::model
