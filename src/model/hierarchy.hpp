// Hierarchical federations (Sec. 1.2's PLC-PLE-PLJ layer structure).
//
// Regional authorities (PLE, PLC, ...) each bundle member testbeds
// (G-Lab, EmanicsLab, VINI, ...). The top level shares the federation's
// value across authorities; each authority redistributes internally.
// HierarchicalFederation flattens the members into one location space,
// builds the flat facility-level game, and exposes:
//   * region_shares()        — Shapley of the quotient game (top level),
//   * owen_shares()          — the structure-consistent per-facility
//                              split (sums within a region to its
//                              quotient Shapley share), and
//   * flat_shapley_shares()  — what facilities would get if the
//                              hierarchy were ignored.
#pragma once

#include <string>
#include <vector>

#include "core/owen.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"

namespace fedshare::model {

/// A regional authority and its member facilities.
struct Region {
  std::string name;
  std::vector<FacilityConfig> members;
};

/// Two-level federation: regions of facilities facing shared demand.
class HierarchicalFederation {
 public:
  /// Regions must be non-empty and contain at least one member each.
  HierarchicalFederation(std::vector<Region> regions, DemandProfile demand);

  [[nodiscard]] int num_regions() const noexcept {
    return static_cast<int>(region_names_.size());
  }
  [[nodiscard]] int num_facilities() const noexcept {
    return space_.num_facilities();
  }
  [[nodiscard]] const std::string& region_name(std::size_t index) const;
  [[nodiscard]] const LocationSpace& space() const noexcept { return space_; }
  [[nodiscard]] const game::CoalitionStructure& structure() const noexcept {
    return structure_;
  }

  /// Region index of a (flattened) facility id.
  [[nodiscard]] std::size_t region_of(int facility) const;

  /// Flat facility-level game (V computed by the allocation engine).
  [[nodiscard]] game::TabularGame build_game() const;

  /// Quotient game between regions.
  [[nodiscard]] game::TabularGame build_region_game() const;

  /// Top-level shares: Shapley of the quotient game (one per region).
  [[nodiscard]] std::vector<double> region_shares() const;

  /// Structure-consistent per-facility shares (Owen value, normalised).
  [[nodiscard]] std::vector<double> owen_shares() const;

  /// Hierarchy-blind per-facility shares (plain Shapley, normalised).
  [[nodiscard]] std::vector<double> flat_shapley_shares() const;

 private:
  LocationSpace space_;
  DemandProfile demand_;
  game::CoalitionStructure structure_;
  std::vector<std::string> region_names_;
  std::vector<std::size_t> region_of_;
};

}  // namespace fedshare::model
