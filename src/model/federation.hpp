// Federation: the top-level model object binding providers and demand.
//
// Wraps a LocationSpace and a DemandProfile into the coalitional game of
// Sec. 3 and exposes the weight vectors the sharing schemes need. This is
// the main entry point of the library's public API:
//
//   auto space = model::LocationSpace::disjoint({{"PLC", 100, 80},
//                                                {"PLE", 400, 60},
//                                                {"PLJ", 800, 20}});
//   model::Federation fed(std::move(space),
//                         model::DemandProfile::uniform(40, 250));
//   auto shares = game::shapley_shares(fed.build_game());
#pragma once

#include <memory>
#include <optional>

#include "core/game.hpp"
#include "core/symmetry.hpp"
#include "exec/value_cache.hpp"
#include "runtime/budget.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"
#include "model/value.hpp"

namespace fedshare::model {

/// A federation of facilities facing a demand profile.
class Federation {
 public:
  Federation(LocationSpace space, DemandProfile demand);

  [[nodiscard]] int num_facilities() const noexcept {
    return space_.num_facilities();
  }
  [[nodiscard]] const LocationSpace& space() const noexcept { return space_; }
  [[nodiscard]] const DemandProfile& demand() const noexcept {
    return demand_;
  }

  /// V(S) computed by the allocation engine (see model/value.hpp),
  /// closed under monotonicity: a coalition can always ignore a
  /// member's resources, so V(S) = max(greedy(S), max_i V(S \ {i})).
  /// The greedy water-filling heuristic occasionally dips when extra
  /// pools mislead it (V({0,4}) > V({0,1,4}) on the PlanetLab-style
  /// config); seeding every coalition with its best strict-subset
  /// solution makes V monotone by construction. Memoised per federation
  /// instance in a shared exec::ValueCache, so each coalition's
  /// allocation is solved exactly once no matter how many schemes,
  /// sweeps, or threads re-query it (the closure recursion materialises
  /// the down-set of S through the same cache). Copies share the cache
  /// until set_demand() gives the callee a fresh one.
  [[nodiscard]] double value(game::Coalition coalition) const;

  /// The greedy allocation value without the monotone closure — the
  /// direct output of the water-filling heuristic. This is the function
  /// the symmetry oracle samples (closure recursion would cost 2^|S|
  /// per probe) and the raw input to the quotient builds, which apply
  /// the same closure on the orbit lattice instead.
  [[nodiscard]] double raw_value(game::Coalition coalition) const;

  /// The instance's V(S) memo (hit/miss statistics for benches).
  [[nodiscard]] const exec::ValueCache& value_cache() const noexcept {
    return *cache_;
  }

  /// The federation's TU game, tabulated (all 2^n coalition values).
  /// Requires num_facilities() <= 24.
  [[nodiscard]] game::TabularGame build_game() const;

  /// The player partition the symmetry engine would quotient with:
  /// identity for kOff; config_symmetry_partition() for kExact; the
  /// oracle-verified refinement of it (sampled on raw_value) for kAuto.
  [[nodiscard]] game::PlayerPartition symmetry_partition(
      game::SymmetryMode mode) const;

  /// Symmetry-aware tabulation: evaluates the greedy allocator once per
  /// orbit of symmetry_partition(mode), applies the monotone closure on
  /// the orbit lattice (equivalent to the full-lattice closure for a
  /// symmetric game, and exact — max is order-independent), and expands
  /// to all 2^n masks. Falls back to build_game() when the partition is
  /// trivial; kOff reproduces build_game() exactly.
  [[nodiscard]] game::TabularGame build_game(game::SymmetryMode mode) const;

  /// Budgeted variant for the resilient pipeline: charges one unit per
  /// orbit materialised (the charging rule's "distinct V(S)" collapses
  /// to distinct orbits) and returns nullopt when the budget trips.
  [[nodiscard]] std::optional<game::TabularGame> build_game_budgeted(
      game::SymmetryMode mode, const runtime::ComputeBudget& budget) const;

  /// Tabulates the allocation-relaxation upper bound of every coalition
  /// via the warm-started subset-lattice sweep (model/value.hpp). The
  /// LP is built once over the grand pool; each coalition patches its
  /// capacities in and — with SolverKind::kRevised — re-solves warm
  /// from its lattice predecessor's basis. Deterministic for any thread
  /// count. Requires num_facilities() <= 20.
  [[nodiscard]] LpSweepResult relaxation_sweep(
      const LpSweepOptions& options = {}) const;

  /// Eq. 6 weights: L_i * R_i * T_i per facility.
  [[nodiscard]] std::vector<double> availability_weights() const;

  /// Eq. 7 weights: units consumed per facility under the grand
  /// coalition's optimal allocation.
  [[nodiscard]] std::vector<double> consumption_weights() const;

  /// Replaces the demand profile (used by the demand-sweep benches).
  /// Invalidates the V(S) memo: cached values depend on demand.
  void set_demand(DemandProfile demand);

 private:
  /// value() with a per-worker exec::CacheWriteBuffer in front of the
  /// shared memo: same closure recursion and the same hit/miss
  /// accounting, but computed values are staged locally and pushed to
  /// the shared cache in shard-grouped batches. Used by build_game()'s
  /// tabulation so workers stop serialising on shard locks for every
  /// stored coalition.
  double value_buffered(game::Coalition coalition,
                        exec::CacheWriteBuffer& buffer) const;

  LocationSpace space_;
  DemandProfile demand_;
  std::shared_ptr<exec::ValueCache> cache_;
};

}  // namespace fedshare::model
