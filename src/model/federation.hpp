// Federation: the top-level model object binding providers and demand.
//
// Wraps a LocationSpace and a DemandProfile into the coalitional game of
// Sec. 3 and exposes the weight vectors the sharing schemes need. This is
// the main entry point of the library's public API:
//
//   auto space = model::LocationSpace::disjoint({{"PLC", 100, 80},
//                                                {"PLE", 400, 60},
//                                                {"PLJ", 800, 20}});
//   model::Federation fed(std::move(space),
//                         model::DemandProfile::uniform(40, 250));
//   auto shares = game::shapley_shares(fed.build_game());
#pragma once

#include <memory>

#include "core/game.hpp"
#include "exec/value_cache.hpp"
#include "model/demand.hpp"
#include "model/location_space.hpp"
#include "model/value.hpp"

namespace fedshare::model {

/// A federation of facilities facing a demand profile.
class Federation {
 public:
  Federation(LocationSpace space, DemandProfile demand);

  [[nodiscard]] int num_facilities() const noexcept {
    return space_.num_facilities();
  }
  [[nodiscard]] const LocationSpace& space() const noexcept { return space_; }
  [[nodiscard]] const DemandProfile& demand() const noexcept {
    return demand_;
  }

  /// V(S) computed by the allocation engine (see model/value.hpp).
  /// Memoised per federation instance in a shared exec::ValueCache, so
  /// each coalition's allocation LP is solved exactly once no matter how
  /// many schemes, sweeps, or threads re-query it. Copies share the
  /// cache until set_demand() gives the callee a fresh one.
  [[nodiscard]] double value(game::Coalition coalition) const;

  /// The instance's V(S) memo (hit/miss statistics for benches).
  [[nodiscard]] const exec::ValueCache& value_cache() const noexcept {
    return *cache_;
  }

  /// The federation's TU game, tabulated (all 2^n coalition values).
  /// Requires num_facilities() <= 24.
  [[nodiscard]] game::TabularGame build_game() const;

  /// Tabulates the allocation-relaxation upper bound of every coalition
  /// via the warm-started subset-lattice sweep (model/value.hpp). The
  /// LP is built once over the grand pool; each coalition patches its
  /// capacities in and — with SolverKind::kRevised — re-solves warm
  /// from its lattice predecessor's basis. Deterministic for any thread
  /// count. Requires num_facilities() <= 20.
  [[nodiscard]] LpSweepResult relaxation_sweep(
      const LpSweepOptions& options = {}) const;

  /// Eq. 6 weights: L_i * R_i * T_i per facility.
  [[nodiscard]] std::vector<double> availability_weights() const;

  /// Eq. 7 weights: units consumed per facility under the grand
  /// coalition's optimal allocation.
  [[nodiscard]] std::vector<double> consumption_weights() const;

  /// Replaces the demand profile (used by the demand-sweep benches).
  /// Invalidates the V(S) memo: cached values depend on demand.
  void set_demand(DemandProfile demand);

 private:
  LocationSpace space_;
  DemandProfile demand_;
  std::shared_ptr<exec::ValueCache> cache_;
};

}  // namespace fedshare::model
