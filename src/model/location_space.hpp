// Location space with overlap (the paper's Sec. 2.1 and Fig. 1).
//
// Facilities contribute resources at locations; location sets may be
// disjoint (the configurations of Figs. 4-9) or overlapping (each
// facility's L_i locations sampled uniformly from a universe of size L,
// which realises the paper's pairwise overlap probabilities o_ij). Where
// sets overlap, capacities add (Fig. 1's note).
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocation.hpp"
#include "core/coalition.hpp"
#include "model/facility.hpp"

namespace fedshare::model {

/// Immutable assignment of facilities to locations.
class LocationSpace {
 public:
  /// Disjoint layout: facility i occupies its own L_i fresh locations.
  static LocationSpace disjoint(std::vector<FacilityConfig> configs);

  /// Overlapping layout: each facility's L_i locations are sampled
  /// uniformly without replacement from a universe of `universe_size`
  /// locations (>= max L_i). Deterministic given `seed`. The expected
  /// pairwise overlap is L_i * L_j / universe_size locations.
  static LocationSpace overlapping(std::vector<FacilityConfig> configs,
                                   int universe_size, std::uint64_t seed);

  [[nodiscard]] int num_facilities() const noexcept {
    return static_cast<int>(facilities_.size());
  }
  [[nodiscard]] const Facility& facility(int id) const;
  [[nodiscard]] const std::vector<Facility>& facilities() const noexcept {
    return facilities_;
  }

  /// Size of the location universe.
  [[nodiscard]] int num_locations() const noexcept { return num_locations_; }

  /// The location ids where `facility` provides resources (ascending).
  [[nodiscard]] const std::vector<int>& locations_of(int facility) const;

  /// Number of distinct locations covered by a coalition (the paper's
  /// |union of L_i| driving the diversity value).
  [[nodiscard]] int distinct_locations(game::Coalition coalition) const;

  /// Fraction of facility a's locations also covered by facility b
  /// (the empirical overlap o_ab); 0 when a has no locations.
  [[nodiscard]] double overlap(int facility_a, int facility_b) const;

  /// Pooled per-location capacities for a coalition: one entry per
  /// distinct covered location (ascending location id), capacities of
  /// co-located members summed, each scaled by availability T_i.
  [[nodiscard]] alloc::LocationPool pool_for(game::Coalition coalition) const;

  /// Location ids corresponding to pool_for(coalition)'s entries.
  [[nodiscard]] std::vector<int> pooled_location_ids(
      game::Coalition coalition) const;

  /// Degraded copy realising an outage scenario: facility i keeps only
  /// the locations whose entry in `up[i]` is true (up[i] is indexed like
  /// locations_of(i) and must match its size). Because the outage
  /// *realises* each facility's availability T_i, surviving locations
  /// carry their full capacity R_il and the degraded facilities report
  /// availability 1 — so a facility with T_i = 1 and an all-up mask is
  /// unchanged, and the expected degraded capacity under masks sampled
  /// from T_i equals the nominal effective capacity R_il * T_i. The
  /// location universe (ids, size) is preserved, so overlaps survive.
  [[nodiscard]] LocationSpace with_outages(
      const std::vector<std::vector<bool>>& up) const;

  /// Splits an allocation's per-location consumed units (aligned with
  /// pool_for(coalition)) across facilities, pro-rata to each facility's
  /// capacity at that location. Returns consumed units per facility
  /// (all facilities; non-members get 0).
  [[nodiscard]] std::vector<double> attribute_consumption(
      game::Coalition coalition,
      const std::vector<double>& units_per_location) const;

 private:
  LocationSpace() = default;

  std::vector<Facility> facilities_;
  std::vector<std::vector<int>> facility_locations_;  // ascending ids
  int num_locations_ = 0;

  void check_coalition(game::Coalition coalition) const;
};

}  // namespace fedshare::model
