// Cost model (the paper's Sec. 2.3.2).
//
// c_i(L_i, R_i, T_i) = alpha*L_i + beta*R_i + gamma*T_i, typically with
// alpha < beta < gamma, plus a fixed per-federation cost c_F covering the
// administrative/technical/legal overhead of federating. The paper's
// numerical analysis ignores provision costs (pre-federation sunk
// investments); the model is kept for the incentive analyses in
// policy/incentives.hpp.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "model/facility.hpp"

namespace fedshare::model {

/// Linear provision-cost model plus fixed federation cost.
struct CostModel {
  double alpha = 0.0;  ///< weight on locations L_i
  double beta = 0.0;   ///< weight on per-location units R_i
  double gamma = 0.0;  ///< weight on availability T_i
  double federation_fixed_cost = 0.0;  ///< c_F, paid once by the coalition

  /// Provision cost of one facility: alpha*L + beta*R + gamma*T.
  [[nodiscard]] double facility_cost(const Facility& facility) const;

  /// Net value of a coalition: gross value minus member provision costs
  /// minus c_F (0 members => 0, no fixed cost).
  [[nodiscard]] double net_value(double gross_value,
                                 const std::vector<Facility>& members) const;

  /// Throws std::invalid_argument on negative parameters.
  void validate() const;
};

}  // namespace fedshare::model

namespace fedshare::model {

/// The net-value game: V_net(S) = V(S) - sum of member provision costs
/// - c_F for non-empty S (empty coalition stays 0). Because the cost
/// terms are additive across players (c_F split aside), the paper's
/// Sec. 2.3.2 claim — "our solutions for dividing the value will not be
/// significantly affected by the actual costs involved" — holds exactly
/// for the Shapley value: phi_i(V_net) = phi_i(V) - c_i - c_F/n, which
/// tests assert via Shapley additivity.
[[nodiscard]] game::TabularGame net_value_game(
    const game::Game& gross, const std::vector<Facility>& facilities,
    const CostModel& cost);

}  // namespace fedshare::model
