// Resource providers (the paper's Sec. 2.1).
//
// A facility i contributes L_i distinct locations, R_i resource units at
// each (the bottleneck-resource aggregation the paper describes), and is
// available a fraction T_i of the time.
#pragma once

#include <string>
#include <vector>

namespace fedshare::model {

/// Static description of a facility's contribution.
struct FacilityConfig {
  std::string name;                 ///< e.g. "PLC", "PLE", "PLJ"
  int num_locations = 0;            ///< L_i
  double units_per_location = 1.0;  ///< R_i (uniform)
  double availability = 1.0;        ///< T_i in (0, 1]
  /// Optional heterogeneous capacities R_il (the paper's general model,
  /// Sec. 2.1): when non-empty it must have num_locations entries and
  /// overrides units_per_location.
  std::vector<double> custom_units;

  /// Throws std::invalid_argument if any field is out of domain.
  void validate() const;
};

/// A facility registered in a federation (id = player index in the game).
class Facility {
 public:
  Facility(int id, FacilityConfig config);

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }
  [[nodiscard]] int num_locations() const noexcept {
    return config_.num_locations;
  }
  [[nodiscard]] double units_per_location() const noexcept {
    return config_.units_per_location;
  }
  [[nodiscard]] double availability() const noexcept {
    return config_.availability;
  }
  /// The full validated config (used by the outage model to derive
  /// degraded facilities).
  [[nodiscard]] const FacilityConfig& config() const noexcept {
    return config_;
  }

  /// Time-discounted capacity at each location: R_i * T_i (uniform case;
  /// with custom units, the mean across locations).
  [[nodiscard]] double effective_units() const noexcept;

  /// Time-discounted capacity at the facility's k-th location (0-based):
  /// R_ik * T_i. Throws std::out_of_range on a bad index.
  [[nodiscard]] double effective_units_at(int local_index) const;

  /// The paper's Eq. 6 weight: sum_l R_il * T_i (= L_i * R_i * T_i in
  /// the uniform case).
  [[nodiscard]] double availability_weight() const noexcept;

 private:
  int id_;
  FacilityConfig config_;
};

}  // namespace fedshare::model
