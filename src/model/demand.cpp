#include "model/demand.hpp"

namespace fedshare::model {

DemandProfile DemandProfile::single_experiment(double min_locations,
                                               double exponent,
                                               double units_per_location) {
  DemandProfile p;
  RequestClass rc;
  rc.count = 1.0;
  rc.min_locations = min_locations;
  rc.exponent = exponent;
  rc.units_per_location = units_per_location;
  p.classes.push_back(rc);
  p.validate();
  return p;
}

DemandProfile DemandProfile::uniform(double count, double min_locations,
                                     double exponent,
                                     double units_per_location) {
  DemandProfile p;
  RequestClass rc;
  rc.count = count;
  rc.min_locations = min_locations;
  rc.exponent = exponent;
  rc.units_per_location = units_per_location;
  p.classes.push_back(rc);
  p.validate();
  return p;
}

DemandProfile DemandProfile::saturating(double min_locations, double exponent,
                                        double units_per_location) {
  return uniform(kSaturatingCount, min_locations, exponent,
                 units_per_location);
}

double DemandProfile::total_count() const noexcept {
  double total = 0.0;
  for (const auto& rc : classes) total += rc.count;
  return total;
}

void DemandProfile::validate() const {
  for (const auto& rc : classes) rc.validate();
}

RequestClass p2p_experiment(double count) {
  RequestClass rc;
  rc.count = count;
  rc.min_locations = 40.0;
  rc.units_per_location = 1.0;
  rc.holding_time = 0.1;
  return rc;
}

RequestClass cdn_service(double count) {
  RequestClass rc;
  rc.count = count;
  rc.min_locations = 100.0;
  rc.units_per_location = 4.0;
  rc.holding_time = 1.0;
  return rc;
}

RequestClass measurement_experiment(double count) {
  RequestClass rc;
  rc.count = count;
  rc.min_locations = 500.0;
  rc.units_per_location = 2.0;
  rc.holding_time = 0.4;
  return rc;
}

}  // namespace fedshare::model
