// Analytic (loss-network) coalition values — the closed-form counterpart
// to model/stochastic_value.hpp, following the paper's Sec. 6 pointer to
// Paschalidis & Liu's loss-network pricing.
//
// Each coalition is treated as a reduced-load Erlang system: experiments
// of one class arrive at rate lambda, need `min_locations` distinct
// locations, and hold each for the class's holding time. V(S) is the
// long-run utility rate lambda * (1 - B_S) * u(l), with B_S the fixed-
// point call-blocking probability on S's pool. Heterogeneous per-location
// capacities are approximated by the pool's mean servers per location.
#pragma once

#include "core/game.hpp"
#include "model/location_space.hpp"
#include "sim/loss_network.hpp"
#include "sim/multiplex_sim.hpp"

namespace fedshare::model {

/// Tabulates the analytic loss-network game for a single traffic class.
/// `scaling_per_facility` mirrors ArrivalScaling::kPerFacility: when
/// true, a coalition of k facilities faces k * arrival_rate.
/// Requires <= 12 facilities; the class must have min_locations >= 1.
[[nodiscard]] game::TabularGame analytic_game(
    const LocationSpace& space, const sim::TrafficClass& traffic,
    bool scaling_per_facility = false);

}  // namespace fedshare::model
