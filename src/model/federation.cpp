#include "model/federation.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/pool.hpp"
#include "model/value.hpp"

namespace fedshare::model {

namespace {

// Masks per tabulation chunk — mirrors core/game.cpp's kTabulateChunk
// so the buffered tabulation below schedules exactly like
// game::tabulate.
constexpr std::uint64_t kTabulateChunk = 16;

// In-place monotone closure on the quotient lattice, level by level:
// V'(c) = max(V(c), max_t V'(c - e_t)). For a symmetric game this
// equals the full-lattice closure restricted to orbits — the subsets of
// any S with counts c cover exactly the count vectors c' <= c — and max
// is order-independent, so the closed quotient expands to exactly the
// closed full table.
void monotone_close_orbits(const game::OrbitIndex& index,
                           std::vector<double>& values) {
  const int n = index.num_players();
  std::vector<std::vector<std::uint64_t>> by_level(
      static_cast<std::size_t>(n) + 1);
  for (std::uint64_t orbit = 1; orbit < index.orbit_count(); ++orbit) {
    by_level[static_cast<std::size_t>(index.level(orbit))].push_back(orbit);
  }
  for (int lvl = 1; lvl <= n; ++lvl) {
    for (const std::uint64_t orbit : by_level[static_cast<std::size_t>(lvl)]) {
      double best = values[static_cast<std::size_t>(orbit)];
      for (int t = 0; t < index.num_types(); ++t) {
        if (const auto pred = index.predecessor(orbit, t)) {
          best = std::max(best, values[static_cast<std::size_t>(*pred)]);
        }
      }
      values[static_cast<std::size_t>(orbit)] = best;
    }
  }
}

}  // namespace

Federation::Federation(LocationSpace space, DemandProfile demand)
    : space_(std::move(space)),
      demand_(std::move(demand)),
      cache_(std::make_shared<exec::ValueCache>()) {
  demand_.validate();
}

double Federation::value(game::Coalition coalition) const {
  return cache_->value_or_compute(coalition.bits(), [&] {
    // Monotone closure: seed with the best strict-subset value so a
    // greedy dip never makes a larger coalition look worth less. The
    // recursion materialises the down-set through the same cache, so
    // each coalition's allocation still runs exactly once.
    double best = coalition_value(space_, demand_, coalition);
    for (const int i : coalition.members()) {
      best = std::max(best, value(coalition.without(i)));
    }
    return best;
  });
}

double Federation::raw_value(game::Coalition coalition) const {
  return coalition_value(space_, demand_, coalition);
}

double Federation::value_buffered(game::Coalition coalition,
                                  exec::CacheWriteBuffer& buffer) const {
  return buffer.value_or_compute(coalition.bits(), [&] {
    // Same monotone closure as value(); the down-set recursion flows
    // through the buffer, so subset values computed for this chunk are
    // reused from the local map without touching a shard lock.
    double best = coalition_value(space_, demand_, coalition);
    for (const int i : coalition.members()) {
      best = std::max(best, value_buffered(coalition.without(i), buffer));
    }
    return best;
  });
}

LpSweepResult Federation::relaxation_sweep(
    const LpSweepOptions& options) const {
  return lp_relaxation_sweep(space_, demand_, options);
}

game::TabularGame Federation::build_game() const {
  const int n = num_facilities();
  if (n > 24) {
    throw std::invalid_argument("tabulate: n must be <= 24");
  }
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> values(count);
  // Buffered tabulation: scheduled exactly like game::tabulate (each
  // mask writes its own slot, so the result is bit-identical to the
  // serial loop at any thread count), but each chunk stages its computed
  // V(S) in a CacheWriteBuffer and batch-stores per shard instead of
  // taking one shard lock per coalition.
  exec::parallel_for(0, count, kTabulateChunk,
                     [&](const exec::ChunkRange& r) {
                       exec::CacheWriteBuffer buffer(*cache_);
                       for (std::uint64_t mask = r.begin; mask < r.end;
                            ++mask) {
                         values[mask] = value_buffered(
                             game::Coalition::from_bits(mask), buffer);
                       }
                       return true;  // buffer flushes on scope exit
                     });
  return game::TabularGame(n, std::move(values));
}

game::PlayerPartition Federation::symmetry_partition(
    game::SymmetryMode mode) const {
  if (mode == game::SymmetryMode::kOff) {
    return game::PlayerPartition::identity(num_facilities());
  }
  game::PlayerPartition candidate = config_symmetry_partition(space_);
  if (mode == game::SymmetryMode::kAuto && !candidate.is_trivial()) {
    // The oracle samples the raw greedy V: the closed value would cost
    // 2^|S| allocations per probe, and closure preserves any symmetry
    // of the raw function.
    const game::FunctionGame raw(
        num_facilities(),
        [this](game::Coalition s) { return raw_value(s); });
    candidate = game::verified_partition(raw, candidate);
  }
  return candidate;
}

game::TabularGame Federation::build_game(game::SymmetryMode mode) const {
  const game::PlayerPartition partition = symmetry_partition(mode);
  if (partition.is_trivial()) return build_game();
  const game::FunctionGame raw(
      num_facilities(),
      [this](game::Coalition s) { return raw_value(s); });
  const game::QuotientGame quotient(raw, partition);
  std::vector<double> orbit_values = quotient.orbit_values();
  monotone_close_orbits(quotient.orbits(), orbit_values);
  return game::expand_orbit_table(quotient.orbits(), orbit_values);
}

std::optional<game::TabularGame> Federation::build_game_budgeted(
    game::SymmetryMode mode, const runtime::ComputeBudget& budget) const {
  const game::PlayerPartition partition = symmetry_partition(mode);
  const game::FunctionGame raw(
      num_facilities(),
      [this](game::Coalition s) { return raw_value(s); });
  if (partition.is_trivial()) {
    // Plain budgeted tabulation of the closed game: charge through the
    // federation cache (one unit per distinct coalition materialised).
    const game::FunctionGame closed(
        num_facilities(),
        [this](game::Coalition s) { return value(s); });
    return game::tabulate_budgeted(closed, budget);
  }
  const game::QuotientGame quotient(raw, partition);
  auto orbit_values = quotient.orbit_values_budgeted(budget);
  if (!orbit_values) return std::nullopt;
  monotone_close_orbits(quotient.orbits(), *orbit_values);
  return game::expand_orbit_table(quotient.orbits(), *orbit_values);
}

std::vector<double> Federation::availability_weights() const {
  std::vector<double> weights;
  weights.reserve(static_cast<std::size_t>(num_facilities()));
  for (const auto& f : space_.facilities()) {
    weights.push_back(f.availability_weight());
  }
  return weights;
}

std::vector<double> Federation::consumption_weights() const {
  return model::consumption_weights(space_, demand_);
}

void Federation::set_demand(DemandProfile demand) {
  demand.validate();
  demand_ = std::move(demand);
  // Fresh cache rather than clear(): copies sharing the old cache keep
  // their (still valid) values for the old demand profile.
  cache_ = std::make_shared<exec::ValueCache>();
}

}  // namespace fedshare::model
