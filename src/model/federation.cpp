#include "model/federation.hpp"

#include <utility>

#include "model/value.hpp"

namespace fedshare::model {

Federation::Federation(LocationSpace space, DemandProfile demand)
    : space_(std::move(space)),
      demand_(std::move(demand)),
      cache_(std::make_shared<exec::ValueCache>()) {
  demand_.validate();
}

double Federation::value(game::Coalition coalition) const {
  return cache_->value_or_compute(coalition.bits(), [&] {
    return coalition_value(space_, demand_, coalition);
  });
}

LpSweepResult Federation::relaxation_sweep(
    const LpSweepOptions& options) const {
  return lp_relaxation_sweep(space_, demand_, options);
}

game::TabularGame Federation::build_game() const {
  const game::FunctionGame fn(
      num_facilities(),
      [this](game::Coalition s) { return value(s); });
  return game::tabulate(fn);
}

std::vector<double> Federation::availability_weights() const {
  std::vector<double> weights;
  weights.reserve(static_cast<std::size_t>(num_facilities()));
  for (const auto& f : space_.facilities()) {
    weights.push_back(f.availability_weight());
  }
  return weights;
}

std::vector<double> Federation::consumption_weights() const {
  return model::consumption_weights(space_, demand_);
}

void Federation::set_demand(DemandProfile demand) {
  demand.validate();
  demand_ = std::move(demand);
  // Fresh cache rather than clear(): copies sharing the old cache keep
  // their (still valid) values for the old demand profile.
  cache_ = std::make_shared<exec::ValueCache>();
}

}  // namespace fedshare::model
