#include "structure/stability.hpp"

#include "core/coalition.hpp"
#include "structure/hedonic.hpp"

namespace fedshare::structure {

StabilityReport analyze_stability(const game::Game& g,
                                  const game::CoalitionStructure& partition,
                                  double tolerance) {
  partition.validate(g.num_players());

  StabilityReport report;
  report.payoffs = partition_payoffs(g, partition);
  report.merge_split_stable = is_merge_split_stable(g, partition);

  // Within-block defection scan: for each block B, every non-empty
  // proper T subset of B is compared against its standalone value
  // (ascending submask order; strictly-greater updates keep the
  // recorded worst deviation deterministic).
  bool first = true;
  for (const auto& block : partition.unions) {
    game::for_each_subset(block, [&](game::Coalition t) {
      if (t.empty() || t == block) return;
      double paid = 0.0;
      for (const int p : t.members()) {
        paid += report.payoffs[static_cast<std::size_t>(p)];
      }
      const double excess = g.value(t) - paid;
      if (first || excess > report.max_excess) {
        first = false;
        report.max_excess = excess;
        report.worst_deviation = t;
      }
    });
  }
  if (first) report.max_excess = 0.0;  // all blocks singletons
  report.defection_proof = report.max_excess <= tolerance;
  return report;
}

}  // namespace fedshare::structure
