#include "structure/hedonic.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/shapley.hpp"
#include "exec/value_cache.hpp"

namespace fedshare::structure {

namespace {

// Shapley payoffs of the subgame restricted to `block`, written into
// `payoffs` at the members' global indices. Identical arithmetic to the
// original policy engine — the cache only removes repeat evaluations.
void block_shapley(const game::Game& g, game::Coalition block,
                   std::vector<double>& payoffs) {
  const std::vector<int> members = block.members();
  const auto k = static_cast<int>(members.size());
  const game::FunctionGame sub(k, [&](game::Coalition s) {
    game::Coalition mapped;
    for (int b = 0; b < k; ++b) {
      if (s.contains(b)) {
        mapped = mapped.with(members[static_cast<std::size_t>(b)]);
      }
    }
    return g.value(mapped);
  });
  const std::vector<double> phi = game::shapley_exact(sub);
  for (int b = 0; b < k; ++b) {
    payoffs[static_cast<std::size_t>(members[static_cast<std::size_t>(b)])] =
        phi[static_cast<std::size_t>(b)];
  }
}

// Pareto comparison over the players in `scope`: true iff nobody loses
// and someone strictly gains.
bool pareto_improves(const std::vector<double>& before,
                     const std::vector<double>& after,
                     game::Coalition scope) {
  bool strict = false;
  for (const int p : scope.members()) {
    const auto up = static_cast<std::size_t>(p);
    if (after[up] < before[up] - 1e-9) return false;
    if (after[up] > before[up] + 1e-9) strict = true;
  }
  return strict;
}

void sort_partition(std::vector<game::Coalition>& blocks) {
  std::sort(blocks.begin(), blocks.end(),
            [](game::Coalition a, game::Coalition b) {
              return a.bits() < b.bits();
            });
}

std::vector<double> payoffs_of_blocks(
    const game::Game& g, const std::vector<game::Coalition>& blocks) {
  std::vector<double> payoffs(static_cast<std::size_t>(g.num_players()),
                              0.0);
  for (const auto& block : blocks) block_shapley(g, block, payoffs);
  return payoffs;
}

}  // namespace

std::vector<double> partition_payoffs(
    const game::Game& g, const game::CoalitionStructure& partition) {
  partition.validate(g.num_players());
  return payoffs_of_blocks(g, partition.unions);
}

HedonicResult hedonic_merge_split(const game::Game& g,
                                  const HedonicOptions& options) {
  game::CoalitionStructure singles;
  for (int i = 0; i < g.num_players(); ++i) {
    singles.unions.push_back(game::Coalition::single(i));
  }
  return hedonic_merge_split(g, std::move(singles), options);
}

HedonicResult hedonic_merge_split(const game::Game& g,
                                  game::CoalitionStructure start,
                                  const HedonicOptions& options) {
  const int n = g.num_players();
  if (n < 1) {
    throw std::invalid_argument("hedonic_merge_split: empty game");
  }
  start.validate(n);

  // Every V(S) the Shapley subgames touch flows through one shared
  // cache: identical doubles to uncached evaluation (the base game is
  // deterministic), each distinct coalition computed once per run.
  exec::ValueCache cache;
  const game::CachedGame cached(g, cache);

  HedonicResult result;
  std::vector<game::Coalition> blocks = start.unions;
  sort_partition(blocks);
  std::vector<double> payoffs = payoffs_of_blocks(cached, blocks);

  while (result.iterations < options.max_operations) {
    bool changed = false;

    // Merge phase: every collection of >= 2 blocks, smaller collections
    // first (the Saad et al. merge rule is not restricted to pairs —
    // pairwise merging is too myopic when only larger unions create
    // value, e.g. grand-coalition-only thresholds). Past the
    // enumeration ceiling, deterministic pairwise merges.
    const std::size_t num_blocks = blocks.size();
    if (num_blocks >= 2 &&
        num_blocks <=
            static_cast<std::size_t>(options.max_merge_enumeration_blocks)) {
      std::vector<std::uint32_t> collections;
      for (std::uint32_t mask = 1;
           mask < (std::uint32_t{1} << num_blocks); ++mask) {
        if (__builtin_popcount(mask) >= 2) collections.push_back(mask);
      }
      std::stable_sort(collections.begin(), collections.end(),
                       [](std::uint32_t a, std::uint32_t b) {
                         return __builtin_popcount(a) <
                                __builtin_popcount(b);
                       });
      for (const std::uint32_t mask : collections) {
        game::Coalition merged;
        for (std::size_t j = 0; j < num_blocks; ++j) {
          if ((mask >> j) & 1u) merged = merged.united(blocks[j]);
        }
        std::vector<double> trial = payoffs;
        block_shapley(cached, merged, trial);
        if (pareto_improves(payoffs, trial, merged)) {
          std::vector<game::Coalition> next;
          for (std::size_t j = 0; j < num_blocks; ++j) {
            if (!((mask >> j) & 1u)) next.push_back(blocks[j]);
          }
          next.push_back(merged);
          blocks = std::move(next);
          sort_partition(blocks);
          payoffs = std::move(trial);
          changed = true;
          ++result.iterations;
          break;
        }
      }
    } else if (num_blocks >= 2) {
      for (std::size_t a = 0; a < num_blocks && !changed; ++a) {
        for (std::size_t b = a + 1; b < num_blocks && !changed; ++b) {
          const game::Coalition merged = blocks[a].united(blocks[b]);
          std::vector<double> trial = payoffs;
          block_shapley(cached, merged, trial);
          if (pareto_improves(payoffs, trial, merged)) {
            std::vector<game::Coalition> next;
            for (std::size_t j = 0; j < num_blocks; ++j) {
              if (j != a && j != b) next.push_back(blocks[j]);
            }
            next.push_back(merged);
            blocks = std::move(next);
            sort_partition(blocks);
            payoffs = std::move(trial);
            changed = true;
            ++result.iterations;
          }
        }
      }
    }
    if (changed) continue;

    // Split phase: every 2-partition of every block, anchored on the
    // block's lowest member so each 2-partition is visited once.
    for (std::size_t a = 0; a < blocks.size() && !changed; ++a) {
      const game::Coalition block = blocks[a];
      if (block.size() < 2) continue;
      const int anchor = block.members().front();
      game::for_each_subset(block.without(anchor), [&](game::Coalition sub) {
        if (changed) return;
        const game::Coalition part1 = sub.with(anchor);
        const game::Coalition part2 = block.minus(part1);
        if (part2.empty()) return;
        std::vector<double> trial = payoffs;
        block_shapley(cached, part1, trial);
        block_shapley(cached, part2, trial);
        if (pareto_improves(payoffs, trial, block)) {
          blocks[a] = part1;
          blocks.push_back(part2);
          sort_partition(blocks);
          payoffs = std::move(trial);
          changed = true;
          ++result.iterations;
        }
      });
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  result.partition.unions = std::move(blocks);
  result.payoffs = std::move(payoffs);
  return result;
}

bool is_merge_split_stable(const game::Game& g,
                           const game::CoalitionStructure& partition) {
  HedonicOptions probe;
  probe.max_operations = 1;
  const HedonicResult r = hedonic_merge_split(g, partition, probe);
  return r.converged && r.iterations == 0;
}

}  // namespace fedshare::structure
