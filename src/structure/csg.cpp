#include "structure/csg.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/pool.hpp"

namespace fedshare::structure {

namespace {

// Masks per parallel chunk of one DP level. The per-mask body is a
// submask scan (tens to thousands of adds), so moderately sized chunks
// amortise the scheduling without starving the stealing.
constexpr std::uint64_t kDpChunk = 32;

game::CoalitionStructure singleton_structure(int n) {
  game::CoalitionStructure s;
  for (int i = 0; i < n; ++i) {
    s.unions.push_back(game::Coalition::single(i));
  }
  return s;
}

// Blocks ordered by lowest member — the canonical presentation every
// engine in this module emits (for disjoint blocks this is the order
// the anchored DP reconstruction produces naturally).
void sort_blocks_canonical(std::vector<game::Coalition>& blocks) {
  std::sort(blocks.begin(), blocks.end(),
            [](game::Coalition a, game::Coalition b) {
              return (a.bits() & -a.bits()) < (b.bits() & -b.bits());
            });
}

// The canonical back-to-front fold over blocks already in canonical
// order: V(B_1) + (V(B_2) + (... + 0)).
double fold_welfare(const std::vector<double>& block_values) {
  double acc = 0.0;
  for (auto it = block_values.rbegin(); it != block_values.rend(); ++it) {
    acc = *it + acc;
  }
  return acc;
}

StructureResult degraded(game::CoalitionStructure structure, double welfare,
                         const runtime::ComputeBudget& budget,
                         std::uint64_t evaluated) {
  StructureResult r;
  r.structure = std::move(structure);
  r.welfare = welfare;
  r.complete = false;
  (void)budget.exhausted();
  r.stop = budget.stop_reason();
  r.coalitions_evaluated = evaluated;
  return r;
}

}  // namespace

std::optional<StructureMode> structure_mode_from_string(
    const std::string& text) {
  if (text == "off") return StructureMode::kOff;
  if (text == "optimal") return StructureMode::kOptimal;
  if (text == "hedonic") return StructureMode::kHedonic;
  return std::nullopt;
}

const char* to_string(StructureMode mode) {
  switch (mode) {
    case StructureMode::kOff: return "off";
    case StructureMode::kOptimal: return "optimal";
    case StructureMode::kHedonic: return "hedonic";
  }
  return "unknown";
}

double structure_welfare(const game::Game& g,
                         const game::CoalitionStructure& partition) {
  partition.validate(g.num_players());
  std::vector<game::Coalition> blocks = partition.unions;
  sort_blocks_canonical(blocks);
  std::vector<double> values;
  values.reserve(blocks.size());
  for (const auto& b : blocks) values.push_back(g.value(b));
  return fold_welfare(values);
}

StructureResult optimal_structure(const game::Game& g,
                                  const runtime::ComputeBudget& budget) {
  const int n = g.num_players();
  if (n < 1 || n > 18) {
    throw std::invalid_argument(
        "optimal_structure: n must be in [1, 18] (the DP walks ~3^n/2 "
        "lattice edges)");
  }
  const std::uint64_t used_before = budget.used();

  // Incumbent phase: the two polynomial-cost candidate structures,
  // evaluated serially in a fixed order so a mid-phase trip yields the
  // same partial result at any thread count.
  std::vector<double> single_values;
  single_values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto v = g.value_budgeted(game::Coalition::single(i), budget);
    if (!v) {
      return degraded(singleton_structure(n), fold_welfare(single_values),
                      budget, budget.used() - used_before);
    }
    single_values.push_back(*v);
  }
  const double singles_welfare = fold_welfare(single_values);
  const auto grand_value =
      g.value_budgeted(game::Coalition::grand(n), budget);
  if (!grand_value) {
    return degraded(singleton_structure(n), singles_welfare, budget,
                    budget.used() - used_before);
  }
  game::CoalitionStructure incumbent;
  double incumbent_welfare;
  if (*grand_value >= singles_welfare) {
    incumbent.unions.push_back(game::Coalition::grand(n));
    incumbent_welfare = *grand_value;
  } else {
    incumbent = singleton_structure(n);
    incumbent_welfare = singles_welfare;
  }

  // Value phase: materialise the full table under the budget (free for
  // tabular games and warm caches; the parallel driver's node-cap
  // verdict matches a serial run, so complete-vs-degraded is
  // thread-independent).
  const auto tab = game::tabulate_budgeted(g, budget);
  if (!tab) {
    return degraded(std::move(incumbent), incumbent_welfare, budget,
                    budget.used() - used_before);
  }
  const std::vector<double>& v = tab->values();

  // DP phase: pure combination over the materialised table — no budget
  // charges (the charging rule counts V(S) materialisations, and every
  // one already happened). Masks are grouped by popcount level; within
  // a level every mask writes only its own slots, so the parallel
  // schedule is unobservable.
  const std::uint64_t count = std::uint64_t{1} << n;
  std::vector<double> best(count, 0.0);
  std::vector<std::uint64_t> choice(count, 0);
  std::vector<std::vector<std::uint64_t>> levels(
      static_cast<std::size_t>(n) + 1);
  for (std::uint64_t mask = 1; mask < count; ++mask) {
    levels[static_cast<std::size_t>(__builtin_popcountll(mask))].push_back(
        mask);
  }
  StructureResult result;
  for (int level = 1; level <= n; ++level) {
    const auto& masks = levels[static_cast<std::size_t>(level)];
    exec::parallel_for(0, masks.size(), kDpChunk,
                       [&](const exec::ChunkRange& r) {
      for (std::uint64_t idx = r.begin; idx < r.end; ++idx) {
        const std::uint64_t mask = masks[idx];
        const std::uint64_t anchor = mask & (~mask + 1);
        const std::uint64_t rest = mask ^ anchor;
        // Whole-of-S first, then every proper anchored first block in
        // ascending submask order; strictly-greater updates fix the
        // tie-break independent of scheduling.
        double best_here = v[mask];
        std::uint64_t choice_here = mask;
        std::uint64_t sub = 0;
        while (sub != rest) {  // sub == rest is the whole-of-S case
          const std::uint64_t first = sub | anchor;
          const double candidate = v[first] + best[mask ^ first];
          if (candidate > best_here) {
            best_here = candidate;
            choice_here = first;
          }
          sub = (sub - rest) & rest;  // next submask of rest
        }
        best[mask] = best_here;
        choice[mask] = choice_here;
      }
      return true;
    });
  }
  // (3^n + 1)/2 - 2^n anchored proper splits + 2^n - 1 whole-of-S
  // candidates, counted arithmetically (the sweep never skips one).
  std::uint64_t pow3 = 1;
  for (int i = 0; i < n; ++i) pow3 *= 3;
  result.splits_considered = (pow3 + 1) / 2 - 1;

  // Reconstruct: repeatedly peel the chosen first block; the anchor
  // walk emits blocks ordered by lowest member.
  std::uint64_t cursor = count - 1;
  while (cursor != 0) {
    const std::uint64_t first = choice[cursor];
    result.structure.unions.push_back(game::Coalition::from_bits(first));
    cursor ^= first;
  }
  result.welfare = best[count - 1];
  result.coalitions_evaluated = budget.used() - used_before;
  return result;
}

StructureResult brute_force_structure(const game::Game& g) {
  const int n = g.num_players();
  if (n < 1 || n > 12) {
    throw std::invalid_argument(
        "brute_force_structure: n must be in [1, 12] (Bell(n) partitions)");
  }
  const game::TabularGame tab = game::tabulate(g);
  const std::vector<double>& v = tab.values();

  StructureResult result;
  result.welfare = 0.0;
  bool have_best = false;
  std::vector<std::uint64_t> best_blocks;
  std::vector<std::uint64_t> blocks;  // recursion state, canonical order
  std::uint64_t enumerated = 0;

  // Restricted-growth recursion: player p joins an existing block or
  // opens a new one (blocks stay ordered by lowest member, so the leaf
  // fold is the canonical one).
  const auto recurse = [&](const auto& self, int p) -> void {
    if (p == n) {
      ++enumerated;
      double acc = 0.0;
      for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
        acc = v[*it] + acc;
      }
      if (!have_best || acc > result.welfare) {
        have_best = true;
        result.welfare = acc;
        best_blocks = blocks;
      }
      return;
    }
    const std::uint64_t bit = std::uint64_t{1} << p;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      blocks[b] |= bit;
      self(self, p + 1);
      blocks[b] ^= bit;
    }
    blocks.push_back(bit);
    self(self, p + 1);
    blocks.pop_back();
  };
  recurse(recurse, 0);

  for (const std::uint64_t b : best_blocks) {
    result.structure.unions.push_back(game::Coalition::from_bits(b));
  }
  result.splits_considered = enumerated;
  return result;
}

}  // namespace fedshare::structure
