// Hedonic merge/split coalition-formation dynamics.
//
// The Saad et al. [12] framework the paper cites for its Sec. 3.3
// "evolution of the federation game": facilities start partitioned,
// each block S earns V(S) split internally by the Shapley value of the
// subgame on S, and the dynamics repeatedly apply
//   * merge — a collection of blocks fuses when every member is at
//     least as well off and someone strictly gains (Pareto rule);
//   * split — a block breaks in two under the same rule.
// A partition admitting neither is merge-split stable (D_hp stability).
//
// This engine supersedes the original policy::merge_split (which
// survives as a forwarding shim): candidate order is unchanged and
// deterministic — merge collections by size then lexicographic, splits
// anchored on each block's lowest member — but every V(S) evaluation
// now flows through a shared exec::ValueCache, so the quadratic
// re-reads across Shapley subgames are computed once; and the n <= 10
// cap is gone. Beyond `max_merge_enumeration_blocks` blocks the
// exhaustive 2^B collection sweep is replaced by deterministic pairwise
// merges (lexicographic pairs) — a weaker rule that never fires in the
// legacy domain, where exhaustive enumeration always applies.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/owen.hpp"

namespace fedshare::structure {

/// Knobs for the dynamics. Defaults reproduce policy::merge_split.
struct HedonicOptions {
  /// Merge/split operations applied before giving up on convergence.
  int max_operations = 200;
  /// Up to this many blocks, merges enumerate every collection of >= 2
  /// blocks (2^B candidates); above it, only pairwise merges.
  int max_merge_enumeration_blocks = 16;
};

/// Outcome of the dynamics (field-compatible with the legacy
/// policy::FormationResult).
struct HedonicResult {
  game::CoalitionStructure partition;  ///< final partition
  std::vector<double> payoffs;         ///< payoffs under it
  int iterations = 0;                  ///< operations applied
  bool converged = false;              ///< no admissible operation remains
};

/// Payoffs of all players under a partition: each block S earns V(S),
/// divided by the Shapley value of the subgame restricted to S.
[[nodiscard]] std::vector<double> partition_payoffs(
    const game::Game& game, const game::CoalitionStructure& partition);

/// Runs merge-and-split from `start` (singletons when omitted) until
/// stability or max_operations. Merges are tried before splits each
/// round; candidate order is deterministic, so results are
/// reproducible. Any n a Coalition can hold.
[[nodiscard]] HedonicResult hedonic_merge_split(
    const game::Game& game, const HedonicOptions& options = {});
[[nodiscard]] HedonicResult hedonic_merge_split(
    const game::Game& game, game::CoalitionStructure start,
    const HedonicOptions& options = {});

/// Whether `partition` admits no Pareto-improving merge or split
/// (D_hp stability).
[[nodiscard]] bool is_merge_split_stable(
    const game::Game& game, const game::CoalitionStructure& partition);

}  // namespace fedshare::structure
