#include "structure/typed_csg.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "exec/pool.hpp"

namespace fedshare::structure {

namespace {

// Orbits per parallel chunk of one DP level (the per-orbit body is a
// sub-vector odometer scan, comparable to the mask DP's submask scan).
constexpr std::uint64_t kTypedChunk = 16;

std::vector<int> singleton_counts(const game::OrbitIndex& index, int player) {
  std::vector<int> c(static_cast<std::size_t>(index.num_types()), 0);
  c[static_cast<std::size_t>(index.partition().type_of(player))] = 1;
  return c;
}

TypedStructureResult degraded(game::CoalitionStructure structure,
                              std::vector<std::vector<int>> block_counts,
                              double welfare,
                              const runtime::ComputeBudget& budget) {
  TypedStructureResult r;
  r.structure = std::move(structure);
  r.block_counts = std::move(block_counts);
  r.welfare = welfare;
  r.complete = false;
  (void)budget.exhausted();
  r.stop = budget.stop_reason();
  return r;
}

}  // namespace

TypedStructureResult optimal_structure_typed(
    const game::QuotientGame& g, const runtime::ComputeBudget& budget) {
  const game::OrbitIndex& index = g.orbits();
  const int n = g.num_players();
  const int num_types = index.num_types();
  const std::uint64_t orbit_count = index.orbit_count();
  if (n < 1) {
    throw std::invalid_argument("optimal_structure_typed: empty game");
  }

  // Incumbent phase, mirroring optimal_structure: all-singletons then
  // grand, serially, so any trip degrades identically at every thread
  // count. Singleton reads charge one orbit per *type*, not per player.
  std::vector<double> single_values;
  single_values.reserve(static_cast<std::size_t>(n));
  game::CoalitionStructure singles;
  std::vector<std::vector<int>> singles_counts;
  for (int i = 0; i < n; ++i) {
    singles.unions.push_back(game::Coalition::single(i));
    singles_counts.push_back(singleton_counts(index, i));
    const auto v = g.value_budgeted(game::Coalition::single(i), budget);
    if (!v) {
      double partial = 0.0;
      for (auto it = single_values.rbegin(); it != single_values.rend();
           ++it) {
        partial = *it + partial;
      }
      return degraded(std::move(singles), std::move(singles_counts), partial,
                      budget);
    }
    single_values.push_back(*v);
  }
  double singles_welfare = 0.0;
  for (auto it = single_values.rbegin(); it != single_values.rend(); ++it) {
    singles_welfare = *it + singles_welfare;
  }
  const auto grand_value = g.value_budgeted(game::Coalition::grand(n), budget);
  if (!grand_value) {
    return degraded(std::move(singles), std::move(singles_counts),
                    singles_welfare, budget);
  }
  game::CoalitionStructure incumbent;
  std::vector<std::vector<int>> incumbent_counts;
  double incumbent_welfare;
  if (*grand_value >= singles_welfare) {
    incumbent.unions.push_back(game::Coalition::grand(n));
    std::vector<int> full(static_cast<std::size_t>(num_types));
    for (int t = 0; t < num_types; ++t) {
      full[static_cast<std::size_t>(t)] = index.partition().multiplicity(t);
    }
    incumbent_counts.push_back(std::move(full));
    incumbent_welfare = *grand_value;
  } else {
    incumbent = singles;
    incumbent_counts = singles_counts;
    incumbent_welfare = singles_welfare;
  }

  // Value phase: the whole orbit table under the budget (one unit per
  // orbit not already cached; all-or-nothing on a trip).
  const auto orbit_values = g.orbit_values_budgeted(budget);
  if (!orbit_values) {
    return degraded(std::move(incumbent), std::move(incumbent_counts),
                    incumbent_welfare, budget);
  }
  const std::vector<double>& v = *orbit_values;

  // DP phase over count vectors, streamed by level |c|. The first part
  // d is anchored on the lowest type present in c (d_t0 >= 1), so each
  // multiset partition of c is generated once per distinct first part
  // — duplicates across equal parts are harmless for the max and the
  // per-orbit enumeration order is fixed, so results are bit-identical
  // at any thread count.
  std::vector<double> best(static_cast<std::size_t>(orbit_count), 0.0);
  std::vector<std::uint64_t> choice(static_cast<std::size_t>(orbit_count), 0);
  std::vector<std::vector<std::uint64_t>> levels(
      static_cast<std::size_t>(n) + 1);
  for (std::uint64_t orbit = 1; orbit < orbit_count; ++orbit) {
    levels[static_cast<std::size_t>(index.level(orbit))].push_back(orbit);
  }
  // Mixed-radix strides: ids are linear in counts, so stride_t is just
  // the orbit id of the single-member coalition {first member of t}.
  std::vector<std::uint64_t> stride(static_cast<std::size_t>(num_types));
  for (int t = 0; t < num_types; ++t) {
    stride[static_cast<std::size_t>(t)] = index.orbit_of(
        std::uint64_t{1} << index.partition().members(t).front());
  }
  for (int level = 1; level <= n; ++level) {
    const auto& orbits = levels[static_cast<std::size_t>(level)];
    exec::parallel_for(0, orbits.size(), kTypedChunk,
                       [&](const exec::ChunkRange& r) {
      std::vector<int> c;
      std::vector<int> d;
      for (std::uint64_t idx = r.begin; idx < r.end; ++idx) {
        const std::uint64_t orbit = orbits[idx];
        c = index.counts(orbit);
        int t0 = 0;
        while (c[static_cast<std::size_t>(t0)] == 0) ++t0;
        // d = c (the whole-of-c part) first, then every anchored
        // sub-vector in ascending id order with strictly-greater
        // updates — same tie-break as the mask DP.
        double best_here = v[static_cast<std::size_t>(orbit)];
        std::uint64_t choice_here = orbit;
        d.assign(c.size(), 0);
        d[static_cast<std::size_t>(t0)] = 1;
        std::uint64_t d_id = stride[static_cast<std::size_t>(t0)];
        while (true) {
          const double candidate =
              v[static_cast<std::size_t>(d_id)] +
              best[static_cast<std::size_t>(orbit - d_id)];
          if (candidate > best_here) {
            best_here = candidate;
            choice_here = d_id;
          }
          // Odometer: next d within the box [d_t0 >= 1, d <= c],
          // least-significant type first (ascending id order).
          int t = 0;
          while (t < num_types) {
            const auto ut = static_cast<std::size_t>(t);
            if (d[ut] < c[ut]) {
              ++d[ut];
              d_id += stride[ut];
              break;
            }
            const int floor_t = (t == t0) ? 1 : 0;
            d_id -= static_cast<std::uint64_t>(d[ut] - floor_t) * stride[ut];
            d[ut] = floor_t;
            ++t;
          }
          if (t == num_types) break;  // odometer wrapped: box exhausted
        }
        best[static_cast<std::size_t>(orbit)] = best_here;
        choice[static_cast<std::size_t>(orbit)] = choice_here;
      }
      return true;
    });
  }

  TypedStructureResult result;
  result.orbits = orbit_count;
  // Anchored first parts per state: c_t0 * prod_{t != t0} (c_t + 1).
  for (std::uint64_t orbit = 1; orbit < orbit_count; ++orbit) {
    const std::vector<int> c = index.counts(orbit);
    int t0 = 0;
    while (c[static_cast<std::size_t>(t0)] == 0) ++t0;
    std::uint64_t count = 1;
    for (int t = 0; t < num_types; ++t) {
      const int ct = c[static_cast<std::size_t>(t)];
      count *= static_cast<std::uint64_t>(t == t0 ? ct : ct + 1);
    }
    result.splits_considered += count;
  }

  // Reconstruct the count-vector solution, then expand to a concrete
  // structure: each block takes the lowest-indexed unused members of
  // each of its types (any assignment has equal welfare — symmetry).
  std::vector<std::size_t> cursor(static_cast<std::size_t>(num_types), 0);
  std::uint64_t remaining = orbit_count - 1;
  std::vector<std::pair<game::Coalition, std::vector<int>>> blocks;
  while (remaining != 0) {
    const std::uint64_t part = choice[static_cast<std::size_t>(remaining)];
    const std::vector<int> counts = index.counts(part);
    game::Coalition block;
    for (int t = 0; t < num_types; ++t) {
      const auto& members = index.partition().members(t);
      for (int k = 0; k < counts[static_cast<std::size_t>(t)]; ++k) {
        block = block.with(members[cursor[static_cast<std::size_t>(t)]++]);
      }
    }
    blocks.emplace_back(block, counts);
    remaining -= part;
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) {
              return (a.first.bits() & -a.first.bits()) <
                     (b.first.bits() & -b.first.bits());
            });
  for (auto& [block, counts] : blocks) {
    result.structure.unions.push_back(block);
    result.block_counts.push_back(std::move(counts));
  }
  result.welfare = best[static_cast<std::size_t>(orbit_count - 1)];
  return result;
}

}  // namespace fedshare::structure
