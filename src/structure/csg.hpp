// Exact coalition-structure generation (CSG) over the subset lattice.
//
// The paper fixes the grand coalition N and studies how to share V(N);
// this module answers the next question (its Sec. 3.3 "evolution of the
// federation game", and the object of study in Guazzone et al.,
// arXiv:1309.2444): *which* partition of the facilities maximises total
// welfare sum_k V(B_k)? The optimal-partition DP runs over the subset
// lattice,
//
//   best[S] = max( V(S),
//                  max_{T : a(S) in T subsetneq S} V(T) + best[S \ T] )
//
// where a(S) is S's lowest member — anchoring the first block on a(S)
// visits every partition of S exactly once, so the sweep costs
// sum_S 2^(|S|-1) = (3^n + 1) / 2 - 2^n lattice edges instead of
// Bell(n) partitions. The sweep is streamed level by level (popcount
// order, like model::lp_relaxation_sweep) through exec::parallel_for:
// each mask owns its best/choice slots and its within-mask enumeration
// order is fixed, so the result — argmax structure included — is
// bit-identical at any thread count.
//
// Budget contract (runtime/budget.hpp charging rule): one unit per
// *distinct* V(S) materialisation, re-reads free — a TabularGame or a
// warm exec::ValueCache makes the whole DP free, and V(S) is drawn from
// whatever shared cache the Game carries (CachedGame, QuotientGame,
// model::Federation's memo). When the budget trips the engine degrades
// to the best structure it has fully evaluated so far — the better of
// the grand coalition and the all-singletons partition (the two
// polynomial-cost candidates it always evaluates first) — tagged
// complete = false with the stop reason, never a wrong answer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/game.hpp"
#include "core/owen.hpp"
#include "runtime/budget.hpp"

namespace fedshare::structure {

/// How the CLI's coalition-structure section is computed.
enum class StructureMode {
  kOff,      ///< no structure analysis; byte-identical historical output
  kOptimal,  ///< exact CSG DP (this module)
  kHedonic,  ///< merge/split dynamics (structure/hedonic.hpp)
};

/// Parses "off" / "optimal" / "hedonic"; nullopt otherwise.
[[nodiscard]] std::optional<StructureMode> structure_mode_from_string(
    const std::string& text);
[[nodiscard]] const char* to_string(StructureMode mode);

/// Outcome of a coalition-structure search.
struct StructureResult {
  /// The best partition found (always passes CoalitionStructure::
  /// validate; blocks ordered by their lowest member).
  game::CoalitionStructure structure;
  /// sum_k V(B_k), accumulated in the canonical fold order (see
  /// structure_welfare). When complete == false this is the welfare of
  /// the blocks whose values materialised before the trip — a lower
  /// bound for nonnegative games, never an overstatement.
  double welfare = 0.0;
  /// True when the DP ran to completion (the structure is provably
  /// optimal); false when the budget tripped and `structure` is the
  /// degraded incumbent.
  bool complete = true;
  /// Why the budget tripped (kNone when complete).
  runtime::StopReason stop = runtime::StopReason::kNone;
  /// Budget units actually charged — distinct V(S) materialisations
  /// (0 for an already-tabulated game).
  std::uint64_t coalitions_evaluated = 0;
  /// First-block candidates the DP examined ((3^n + 1)/2 - 2^n + 2^n - 1
  /// when complete; 0 when degraded before the sweep).
  std::uint64_t splits_considered = 0;
};

/// Canonical welfare fold of a partition: blocks sorted by lowest
/// member, values accumulated back to front (V(B_1) + (V(B_2) + (...)))
/// — exactly the floating-point order the DP recurrence uses, so a
/// structure's recomputed welfare is bitwise equal to the DP's optimum.
/// Validates `partition` against the game first.
[[nodiscard]] double structure_welfare(
    const game::Game& game, const game::CoalitionStructure& partition);

/// Welfare-optimal coalition structure via the anchored subset-lattice
/// DP. Requires 1 <= n <= 18 (the sweep walks ~3^n / 2 lattice edges).
/// Deterministic — bit-identical structure and welfare at any exec
/// thread count; see the budget contract above for degraded results.
[[nodiscard]] StructureResult optimal_structure(
    const game::Game& game, const runtime::ComputeBudget& budget = {});

/// Brute-force reference: enumerates all Bell(n) set partitions
/// (restricted-growth recursion) and folds each candidate's welfare in
/// the same canonical order as the DP, so the two engines' optima agree
/// bitwise. Requires 1 <= n <= 12. `splits_considered` reports the
/// number of partitions enumerated.
[[nodiscard]] StructureResult brute_force_structure(const game::Game& game);

}  // namespace fedshare::structure
