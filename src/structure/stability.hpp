// Stability analysis of a coalition structure.
//
// Two notions, both relative to the structure's internal payoff vector
// x (each block S earns V(S), split by the Shapley value of the
// subgame on S — hedonic.hpp's partition_payoffs):
//
//   * merge/split (D_hp) stability — no Pareto-improving merge of
//     blocks and no Pareto-improving 2-split of a block exists; the
//     fixed-point condition of the hedonic dynamics.
//   * defection-proofness — no non-empty proper subset T of any block B
//     could earn more on its own than it is paid: the within-block
//     excess e(T) = V(T) - x(T) is <= tolerance for every such T. This
//     is the structure-local analogue of the core's coalitional-
//     rationality rows (core_solution.hpp's max_core_violation,
//     restricted to deviations that respect block boundaries).
//
// The two are incomparable: a merge/split-stable partition can still
// harbour a profitable sub-block defection (splits only test
// 2-partitions under the Pareto rule, defection tests every subset
// against its own standalone value), and a defection-proof one can
// admit a profitable merge.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/owen.hpp"

namespace fedshare::structure {

/// Stability verdict for one structure.
struct StabilityReport {
  /// No admissible merge or split (D_hp stability).
  bool merge_split_stable = false;
  /// max within-block excess <= tolerance.
  bool defection_proof = false;
  /// max over blocks B and non-empty proper T subset B of V(T) - x(T).
  /// -inf-free: 0 when no block has a proper subset (all singletons).
  double max_excess = 0.0;
  /// A coalition attaining max_excess (empty when all singletons).
  game::Coalition worst_deviation;
  /// The payoff vector x the verdicts are relative to.
  std::vector<double> payoffs;
};

/// Analyses `partition` (validated first). `tolerance` bounds the
/// excess allowed before a deviation counts as profitable. Block sizes
/// beyond ~20 make the within-block subset scan expensive (2^|B|).
[[nodiscard]] StabilityReport analyze_stability(
    const game::Game& game, const game::CoalitionStructure& partition,
    double tolerance = 1e-9);

}  // namespace fedshare::structure
