// Coalition-structure generation on the symmetry quotient.
//
// For a game that is symmetric under a PlayerPartition (T types with
// multiplicities m_t), a block's value depends only on its type-count
// vector, so the optimal-partition search collapses from set partitions
// of n players to multiset partitions of the multiplicity vector m:
//
//   best[c] = max_{0 < d <= c} V(d) + best[c - d],   best[0] = 0,
//
// over the orbit lattice (core/symmetry.hpp) — prod_t (m_t + 1) states
// instead of 2^n masks, with V(d) evaluated once per orbit through the
// QuotientGame's sharded cache. Any concrete assignment of players to a
// block's counts yields the same welfare (that is what symmetry means),
// so the engine expands the count-vector solution to one canonical
// CoalitionStructure (lowest-indexed unused members of each type) whose
// welfare provably equals the full-lattice CSG optimum.
//
// Budget contract: one unit per distinct *orbit* materialised (the
// quotient charging rule); on a trip the engine degrades to the better
// of grand coalition and all-singletons, tagged complete = false.
#pragma once

#include <cstdint>
#include <vector>

#include "core/symmetry.hpp"
#include "runtime/budget.hpp"
#include "structure/csg.hpp"

namespace fedshare::structure {

/// Outcome of the typed CSG. `structure`/`welfare`/`complete`/`stop`
/// follow StructureResult's contract; `block_counts` is the typed
/// solution itself — one type-count vector per block, aligned with
/// `structure.unions`.
struct TypedStructureResult {
  game::CoalitionStructure structure;
  std::vector<std::vector<int>> block_counts;
  double welfare = 0.0;
  bool complete = true;
  runtime::StopReason stop = runtime::StopReason::kNone;
  /// Orbits in the quotient lattice (the DP's state count).
  std::uint64_t orbits = 0;
  /// (first part, remainder) candidates the DP examined.
  std::uint64_t splits_considered = 0;
};

/// Welfare-optimal coalition structure of a symmetric game via the
/// orbit-lattice DP. The QuotientGame's partition must be a sound
/// symmetry of the base game (detection/verification is the caller's
/// job, as for every quotient consumer). Deterministic at any exec
/// thread count.
[[nodiscard]] TypedStructureResult optimal_structure_typed(
    const game::QuotientGame& game,
    const runtime::ComputeBudget& budget = {});

}  // namespace fedshare::structure
