file(REMOVE_RECURSE
  "../bench/ablate_outage"
  "../bench/ablate_outage.pdb"
  "CMakeFiles/ablate_outage.dir/ablate_outage.cpp.o"
  "CMakeFiles/ablate_outage.dir/ablate_outage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
