# Empty dependencies file for ablate_outage.
# This may be replaced when dependencies are built.
