file(REMOVE_RECURSE
  "../bench/ablate_stochastic_value"
  "../bench/ablate_stochastic_value.pdb"
  "CMakeFiles/ablate_stochastic_value.dir/ablate_stochastic_value.cpp.o"
  "CMakeFiles/ablate_stochastic_value.dir/ablate_stochastic_value.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_stochastic_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
