# Empty compiler generated dependencies file for ablate_stochastic_value.
# This may be replaced when dependencies are built.
