# Empty compiler generated dependencies file for perf_simplex.
# This may be replaced when dependencies are built.
