file(REMOVE_RECURSE
  "../bench/perf_simplex"
  "../bench/perf_simplex.pdb"
  "CMakeFiles/perf_simplex.dir/perf_simplex.cpp.o"
  "CMakeFiles/perf_simplex.dir/perf_simplex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
