file(REMOVE_RECURSE
  "../bench/perf_parallel"
  "../bench/perf_parallel.pdb"
  "CMakeFiles/perf_parallel.dir/perf_parallel.cpp.o"
  "CMakeFiles/perf_parallel.dir/perf_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
