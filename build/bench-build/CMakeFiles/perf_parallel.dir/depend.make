# Empty dependencies file for perf_parallel.
# This may be replaced when dependencies are built.
