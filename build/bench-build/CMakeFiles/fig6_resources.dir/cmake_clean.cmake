file(REMOVE_RECURSE
  "../bench/fig6_resources"
  "../bench/fig6_resources.pdb"
  "CMakeFiles/fig6_resources.dir/fig6_resources.cpp.o"
  "CMakeFiles/fig6_resources.dir/fig6_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
