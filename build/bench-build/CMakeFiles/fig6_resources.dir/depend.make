# Empty dependencies file for fig6_resources.
# This may be replaced when dependencies are built.
