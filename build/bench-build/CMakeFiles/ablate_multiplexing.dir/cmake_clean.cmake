file(REMOVE_RECURSE
  "../bench/ablate_multiplexing"
  "../bench/ablate_multiplexing.pdb"
  "CMakeFiles/ablate_multiplexing.dir/ablate_multiplexing.cpp.o"
  "CMakeFiles/ablate_multiplexing.dir/ablate_multiplexing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
