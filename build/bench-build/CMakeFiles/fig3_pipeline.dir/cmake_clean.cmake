file(REMOVE_RECURSE
  "../bench/fig3_pipeline"
  "../bench/fig3_pipeline.pdb"
  "CMakeFiles/fig3_pipeline.dir/fig3_pipeline.cpp.o"
  "CMakeFiles/fig3_pipeline.dir/fig3_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
