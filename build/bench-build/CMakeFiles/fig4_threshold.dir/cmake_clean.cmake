file(REMOVE_RECURSE
  "../bench/fig4_threshold"
  "../bench/fig4_threshold.pdb"
  "CMakeFiles/fig4_threshold.dir/fig4_threshold.cpp.o"
  "CMakeFiles/fig4_threshold.dir/fig4_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
