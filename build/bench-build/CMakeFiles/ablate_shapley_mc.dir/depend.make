# Empty dependencies file for ablate_shapley_mc.
# This may be replaced when dependencies are built.
