file(REMOVE_RECURSE
  "../bench/ablate_shapley_mc"
  "../bench/ablate_shapley_mc.pdb"
  "CMakeFiles/ablate_shapley_mc.dir/ablate_shapley_mc.cpp.o"
  "CMakeFiles/ablate_shapley_mc.dir/ablate_shapley_mc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_shapley_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
