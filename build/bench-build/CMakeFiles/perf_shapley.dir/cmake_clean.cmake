file(REMOVE_RECURSE
  "../bench/perf_shapley"
  "../bench/perf_shapley.pdb"
  "CMakeFiles/perf_shapley.dir/perf_shapley.cpp.o"
  "CMakeFiles/perf_shapley.dir/perf_shapley.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
