# Empty compiler generated dependencies file for perf_shapley.
# This may be replaced when dependencies are built.
