# Empty dependencies file for ablate_equilibrium.
# This may be replaced when dependencies are built.
