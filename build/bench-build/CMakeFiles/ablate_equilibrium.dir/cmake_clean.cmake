file(REMOVE_RECURSE
  "../bench/ablate_equilibrium"
  "../bench/ablate_equilibrium.pdb"
  "CMakeFiles/ablate_equilibrium.dir/ablate_equilibrium.cpp.o"
  "CMakeFiles/ablate_equilibrium.dir/ablate_equilibrium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
