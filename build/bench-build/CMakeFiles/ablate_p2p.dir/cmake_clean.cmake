file(REMOVE_RECURSE
  "../bench/ablate_p2p"
  "../bench/ablate_p2p.pdb"
  "CMakeFiles/ablate_p2p.dir/ablate_p2p.cpp.o"
  "CMakeFiles/ablate_p2p.dir/ablate_p2p.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
