
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_p2p.cpp" "bench-build/CMakeFiles/ablate_p2p.dir/ablate_p2p.cpp.o" "gcc" "bench-build/CMakeFiles/ablate_p2p.dir/ablate_p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
