# Empty compiler generated dependencies file for ablate_p2p.
# This may be replaced when dependencies are built.
