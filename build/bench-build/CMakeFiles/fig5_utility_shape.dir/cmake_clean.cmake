file(REMOVE_RECURSE
  "../bench/fig5_utility_shape"
  "../bench/fig5_utility_shape.pdb"
  "CMakeFiles/fig5_utility_shape.dir/fig5_utility_shape.cpp.o"
  "CMakeFiles/fig5_utility_shape.dir/fig5_utility_shape.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_utility_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
