# Empty dependencies file for fig5_utility_shape.
# This may be replaced when dependencies are built.
