file(REMOVE_RECURSE
  "../bench/ablate_overlap"
  "../bench/ablate_overlap.pdb"
  "CMakeFiles/ablate_overlap.dir/ablate_overlap.cpp.o"
  "CMakeFiles/ablate_overlap.dir/ablate_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
