# Empty dependencies file for ablate_overlap.
# This may be replaced when dependencies are built.
