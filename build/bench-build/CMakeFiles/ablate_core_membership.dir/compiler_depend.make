# Empty compiler generated dependencies file for ablate_core_membership.
# This may be replaced when dependencies are built.
