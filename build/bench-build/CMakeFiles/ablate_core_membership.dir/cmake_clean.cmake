file(REMOVE_RECURSE
  "../bench/ablate_core_membership"
  "../bench/ablate_core_membership.pdb"
  "CMakeFiles/ablate_core_membership.dir/ablate_core_membership.cpp.o"
  "CMakeFiles/ablate_core_membership.dir/ablate_core_membership.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_core_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
