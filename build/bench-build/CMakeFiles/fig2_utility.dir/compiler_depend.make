# Empty compiler generated dependencies file for fig2_utility.
# This may be replaced when dependencies are built.
