file(REMOVE_RECURSE
  "../bench/fig2_utility"
  "../bench/fig2_utility.pdb"
  "CMakeFiles/fig2_utility.dir/fig2_utility.cpp.o"
  "CMakeFiles/fig2_utility.dir/fig2_utility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
