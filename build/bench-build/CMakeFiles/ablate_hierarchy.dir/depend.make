# Empty dependencies file for ablate_hierarchy.
# This may be replaced when dependencies are built.
