file(REMOVE_RECURSE
  "../bench/ablate_hierarchy"
  "../bench/ablate_hierarchy.pdb"
  "CMakeFiles/ablate_hierarchy.dir/ablate_hierarchy.cpp.o"
  "CMakeFiles/ablate_hierarchy.dir/ablate_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
