file(REMOVE_RECURSE
  "../bench/ablate_formation"
  "../bench/ablate_formation.pdb"
  "CMakeFiles/ablate_formation.dir/ablate_formation.cpp.o"
  "CMakeFiles/ablate_formation.dir/ablate_formation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
