# Empty dependencies file for ablate_formation.
# This may be replaced when dependencies are built.
