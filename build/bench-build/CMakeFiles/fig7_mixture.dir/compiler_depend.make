# Empty compiler generated dependencies file for fig7_mixture.
# This may be replaced when dependencies are built.
