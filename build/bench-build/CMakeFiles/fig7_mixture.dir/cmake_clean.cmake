file(REMOVE_RECURSE
  "../bench/fig7_mixture"
  "../bench/fig7_mixture.pdb"
  "CMakeFiles/fig7_mixture.dir/fig7_mixture.cpp.o"
  "CMakeFiles/fig7_mixture.dir/fig7_mixture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
