file(REMOVE_RECURSE
  "../bench/ablate_reliability"
  "../bench/ablate_reliability.pdb"
  "CMakeFiles/ablate_reliability.dir/ablate_reliability.cpp.o"
  "CMakeFiles/ablate_reliability.dir/ablate_reliability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
