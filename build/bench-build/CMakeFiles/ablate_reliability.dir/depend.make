# Empty dependencies file for ablate_reliability.
# This may be replaced when dependencies are built.
