file(REMOVE_RECURSE
  "../bench/fig8_demand_volume"
  "../bench/fig8_demand_volume.pdb"
  "CMakeFiles/fig8_demand_volume.dir/fig8_demand_volume.cpp.o"
  "CMakeFiles/fig8_demand_volume.dir/fig8_demand_volume.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_demand_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
