# Empty compiler generated dependencies file for fig8_demand_volume.
# This may be replaced when dependencies are built.
