file(REMOVE_RECURSE
  "../bench/ablate_complementarity"
  "../bench/ablate_complementarity.pdb"
  "CMakeFiles/ablate_complementarity.dir/ablate_complementarity.cpp.o"
  "CMakeFiles/ablate_complementarity.dir/ablate_complementarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_complementarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
