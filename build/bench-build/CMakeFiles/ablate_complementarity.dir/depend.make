# Empty dependencies file for ablate_complementarity.
# This may be replaced when dependencies are built.
