# Empty dependencies file for fig9_incentives.
# This may be replaced when dependencies are built.
