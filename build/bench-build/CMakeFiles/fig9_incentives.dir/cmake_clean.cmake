file(REMOVE_RECURSE
  "../bench/fig9_incentives"
  "../bench/fig9_incentives.pdb"
  "CMakeFiles/fig9_incentives.dir/fig9_incentives.cpp.o"
  "CMakeFiles/fig9_incentives.dir/fig9_incentives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
