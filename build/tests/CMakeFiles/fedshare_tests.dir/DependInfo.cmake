
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloc.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_alloc.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_alloc.cpp.o.d"
  "/root/repo/tests/test_alloc_property.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_alloc_property.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_alloc_property.cpp.o.d"
  "/root/repo/tests/test_analytic_value.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_analytic_value.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_analytic_value.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_coalition.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_coalition.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_coalition.cpp.o.d"
  "/root/repo/tests/test_coalition_formation.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_coalition_formation.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_coalition_formation.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_core_solution.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_core_solution.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_core_solution.cpp.o.d"
  "/root/repo/tests/test_dividends.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_dividends.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_dividends.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_federation_property.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_federation_property.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_federation_property.cpp.o.d"
  "/root/repo/tests/test_figures.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_figures.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_figures.cpp.o.d"
  "/root/repo/tests/test_game.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_game.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_game.cpp.o.d"
  "/root/repo/tests/test_game_io.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_game_io.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_game_io.cpp.o.d"
  "/root/repo/tests/test_game_property.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_game_property.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_game_property.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_lp.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_lp.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_lp.cpp.o.d"
  "/root/repo/tests/test_lp_property.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_lp_property.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_lp_property.cpp.o.d"
  "/root/repo/tests/test_market.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_market.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_market.cpp.o.d"
  "/root/repo/tests/test_mixture.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_mixture.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_mixture.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_owen.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_owen.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_owen.cpp.o.d"
  "/root/repo/tests/test_p2p.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_policy.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_policy.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_policy.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_shapley.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_shapley.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_shapley.cpp.o.d"
  "/root/repo/tests/test_sharing.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_sharing.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_sharing.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stochastic_value.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_stochastic_value.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_stochastic_value.cpp.o.d"
  "/root/repo/tests/test_values_ext.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_values_ext.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_values_ext.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/fedshare_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/fedshare_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
