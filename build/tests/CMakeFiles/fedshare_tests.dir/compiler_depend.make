# Empty compiler generated dependencies file for fedshare_tests.
# This may be replaced when dependencies are built.
