file(REMOVE_RECURSE
  "libfedshare_market.a"
)
