# Empty dependencies file for fedshare_market.
# This may be replaced when dependencies are built.
