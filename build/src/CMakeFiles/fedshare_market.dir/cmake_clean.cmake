file(REMOVE_RECURSE
  "CMakeFiles/fedshare_market.dir/market/revenue.cpp.o"
  "CMakeFiles/fedshare_market.dir/market/revenue.cpp.o.d"
  "libfedshare_market.a"
  "libfedshare_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
