file(REMOVE_RECURSE
  "libfedshare_runtime.a"
)
