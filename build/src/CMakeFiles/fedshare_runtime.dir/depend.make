# Empty dependencies file for fedshare_runtime.
# This may be replaced when dependencies are built.
