file(REMOVE_RECURSE
  "CMakeFiles/fedshare_runtime.dir/runtime/outage.cpp.o"
  "CMakeFiles/fedshare_runtime.dir/runtime/outage.cpp.o.d"
  "CMakeFiles/fedshare_runtime.dir/runtime/resilient.cpp.o"
  "CMakeFiles/fedshare_runtime.dir/runtime/resilient.cpp.o.d"
  "libfedshare_runtime.a"
  "libfedshare_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
