# Empty compiler generated dependencies file for fedshare_policy.
# This may be replaced when dependencies are built.
