
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/coalition_formation.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/coalition_formation.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/coalition_formation.cpp.o.d"
  "/root/repo/src/policy/equilibrium.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/equilibrium.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/equilibrium.cpp.o.d"
  "/root/repo/src/policy/incentives.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/incentives.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/incentives.cpp.o.d"
  "/root/repo/src/policy/mixture.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/mixture.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/mixture.cpp.o.d"
  "/root/repo/src/policy/p2p_policy.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/p2p_policy.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/p2p_policy.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/policy.cpp.o.d"
  "/root/repo/src/policy/sensitivity.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/sensitivity.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/sensitivity.cpp.o.d"
  "/root/repo/src/policy/weights.cpp" "src/CMakeFiles/fedshare_policy.dir/policy/weights.cpp.o" "gcc" "src/CMakeFiles/fedshare_policy.dir/policy/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
