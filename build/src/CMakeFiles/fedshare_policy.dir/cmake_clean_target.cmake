file(REMOVE_RECURSE
  "libfedshare_policy.a"
)
