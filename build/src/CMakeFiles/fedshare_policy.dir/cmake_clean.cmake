file(REMOVE_RECURSE
  "CMakeFiles/fedshare_policy.dir/policy/coalition_formation.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/coalition_formation.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/equilibrium.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/equilibrium.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/incentives.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/incentives.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/mixture.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/mixture.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/p2p_policy.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/p2p_policy.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/policy.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/policy.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/sensitivity.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/sensitivity.cpp.o.d"
  "CMakeFiles/fedshare_policy.dir/policy/weights.cpp.o"
  "CMakeFiles/fedshare_policy.dir/policy/weights.cpp.o.d"
  "libfedshare_policy.a"
  "libfedshare_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
