file(REMOVE_RECURSE
  "libfedshare_game.a"
)
