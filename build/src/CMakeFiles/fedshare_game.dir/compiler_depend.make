# Empty compiler generated dependencies file for fedshare_game.
# This may be replaced when dependencies are built.
