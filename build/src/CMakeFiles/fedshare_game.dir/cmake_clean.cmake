file(REMOVE_RECURSE
  "CMakeFiles/fedshare_game.dir/core/banzhaf.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/banzhaf.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/coalition.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/coalition.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/core_solution.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/core_solution.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/dividends.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/dividends.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/game.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/game.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/game_io.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/game_io.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/kernel.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/kernel.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/nucleolus.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/nucleolus.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/owen.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/owen.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/properties.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/properties.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/shapley.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/shapley.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/sharing.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/sharing.cpp.o.d"
  "CMakeFiles/fedshare_game.dir/core/values_ext.cpp.o"
  "CMakeFiles/fedshare_game.dir/core/values_ext.cpp.o.d"
  "libfedshare_game.a"
  "libfedshare_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
