
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/banzhaf.cpp" "src/CMakeFiles/fedshare_game.dir/core/banzhaf.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/banzhaf.cpp.o.d"
  "/root/repo/src/core/coalition.cpp" "src/CMakeFiles/fedshare_game.dir/core/coalition.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/coalition.cpp.o.d"
  "/root/repo/src/core/core_solution.cpp" "src/CMakeFiles/fedshare_game.dir/core/core_solution.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/core_solution.cpp.o.d"
  "/root/repo/src/core/dividends.cpp" "src/CMakeFiles/fedshare_game.dir/core/dividends.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/dividends.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/CMakeFiles/fedshare_game.dir/core/game.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/game.cpp.o.d"
  "/root/repo/src/core/game_io.cpp" "src/CMakeFiles/fedshare_game.dir/core/game_io.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/game_io.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/CMakeFiles/fedshare_game.dir/core/kernel.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/kernel.cpp.o.d"
  "/root/repo/src/core/nucleolus.cpp" "src/CMakeFiles/fedshare_game.dir/core/nucleolus.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/nucleolus.cpp.o.d"
  "/root/repo/src/core/owen.cpp" "src/CMakeFiles/fedshare_game.dir/core/owen.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/owen.cpp.o.d"
  "/root/repo/src/core/properties.cpp" "src/CMakeFiles/fedshare_game.dir/core/properties.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/properties.cpp.o.d"
  "/root/repo/src/core/shapley.cpp" "src/CMakeFiles/fedshare_game.dir/core/shapley.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/shapley.cpp.o.d"
  "/root/repo/src/core/sharing.cpp" "src/CMakeFiles/fedshare_game.dir/core/sharing.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/sharing.cpp.o.d"
  "/root/repo/src/core/values_ext.cpp" "src/CMakeFiles/fedshare_game.dir/core/values_ext.cpp.o" "gcc" "src/CMakeFiles/fedshare_game.dir/core/values_ext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
