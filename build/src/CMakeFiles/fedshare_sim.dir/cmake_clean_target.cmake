file(REMOVE_RECURSE
  "libfedshare_sim.a"
)
