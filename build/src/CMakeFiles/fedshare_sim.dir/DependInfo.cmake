
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/distributions.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/distributions.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/distributions.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/loss_network.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/loss_network.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/loss_network.cpp.o.d"
  "/root/repo/src/sim/loss_system.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/loss_system.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/loss_system.cpp.o.d"
  "/root/repo/src/sim/multiplex_sim.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/multiplex_sim.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/multiplex_sim.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/fedshare_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/fedshare_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
