# Empty dependencies file for fedshare_sim.
# This may be replaced when dependencies are built.
