file(REMOVE_RECURSE
  "CMakeFiles/fedshare_sim.dir/sim/distributions.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/distributions.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/loss_network.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/loss_network.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/loss_system.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/loss_system.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/multiplex_sim.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/multiplex_sim.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/fedshare_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/fedshare_sim.dir/sim/workload.cpp.o.d"
  "libfedshare_sim.a"
  "libfedshare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
