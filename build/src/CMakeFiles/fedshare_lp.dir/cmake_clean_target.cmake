file(REMOVE_RECURSE
  "libfedshare_lp.a"
)
