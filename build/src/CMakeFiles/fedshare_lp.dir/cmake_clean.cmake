file(REMOVE_RECURSE
  "CMakeFiles/fedshare_lp.dir/lp/matrix.cpp.o"
  "CMakeFiles/fedshare_lp.dir/lp/matrix.cpp.o.d"
  "CMakeFiles/fedshare_lp.dir/lp/problem.cpp.o"
  "CMakeFiles/fedshare_lp.dir/lp/problem.cpp.o.d"
  "CMakeFiles/fedshare_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/fedshare_lp.dir/lp/simplex.cpp.o.d"
  "libfedshare_lp.a"
  "libfedshare_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
