# Empty compiler generated dependencies file for fedshare_lp.
# This may be replaced when dependencies are built.
