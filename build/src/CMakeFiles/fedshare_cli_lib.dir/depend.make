# Empty dependencies file for fedshare_cli_lib.
# This may be replaced when dependencies are built.
