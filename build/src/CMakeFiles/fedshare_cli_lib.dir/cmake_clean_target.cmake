file(REMOVE_RECURSE
  "libfedshare_cli_lib.a"
)
