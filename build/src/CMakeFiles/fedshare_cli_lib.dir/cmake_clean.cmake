file(REMOVE_RECURSE
  "CMakeFiles/fedshare_cli_lib.dir/cli/runner.cpp.o"
  "CMakeFiles/fedshare_cli_lib.dir/cli/runner.cpp.o.d"
  "libfedshare_cli_lib.a"
  "libfedshare_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
