file(REMOVE_RECURSE
  "CMakeFiles/fedshare_model.dir/model/analytic_value.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/analytic_value.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/cost.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/cost.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/demand.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/demand.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/facility.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/facility.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/federation.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/federation.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/hierarchy.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/hierarchy.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/location_space.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/location_space.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/stochastic_value.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/stochastic_value.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/utility.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/utility.cpp.o.d"
  "CMakeFiles/fedshare_model.dir/model/value.cpp.o"
  "CMakeFiles/fedshare_model.dir/model/value.cpp.o.d"
  "libfedshare_model.a"
  "libfedshare_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
