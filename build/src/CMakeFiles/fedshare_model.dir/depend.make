# Empty dependencies file for fedshare_model.
# This may be replaced when dependencies are built.
