file(REMOVE_RECURSE
  "libfedshare_model.a"
)
