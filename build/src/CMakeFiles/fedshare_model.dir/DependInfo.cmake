
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analytic_value.cpp" "src/CMakeFiles/fedshare_model.dir/model/analytic_value.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/analytic_value.cpp.o.d"
  "/root/repo/src/model/cost.cpp" "src/CMakeFiles/fedshare_model.dir/model/cost.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/cost.cpp.o.d"
  "/root/repo/src/model/demand.cpp" "src/CMakeFiles/fedshare_model.dir/model/demand.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/demand.cpp.o.d"
  "/root/repo/src/model/facility.cpp" "src/CMakeFiles/fedshare_model.dir/model/facility.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/facility.cpp.o.d"
  "/root/repo/src/model/federation.cpp" "src/CMakeFiles/fedshare_model.dir/model/federation.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/federation.cpp.o.d"
  "/root/repo/src/model/hierarchy.cpp" "src/CMakeFiles/fedshare_model.dir/model/hierarchy.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/hierarchy.cpp.o.d"
  "/root/repo/src/model/location_space.cpp" "src/CMakeFiles/fedshare_model.dir/model/location_space.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/location_space.cpp.o.d"
  "/root/repo/src/model/stochastic_value.cpp" "src/CMakeFiles/fedshare_model.dir/model/stochastic_value.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/stochastic_value.cpp.o.d"
  "/root/repo/src/model/utility.cpp" "src/CMakeFiles/fedshare_model.dir/model/utility.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/utility.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/CMakeFiles/fedshare_model.dir/model/value.cpp.o" "gcc" "src/CMakeFiles/fedshare_model.dir/model/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
