file(REMOVE_RECURSE
  "libfedshare_exec.a"
)
