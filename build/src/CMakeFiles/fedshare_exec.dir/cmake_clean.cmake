file(REMOVE_RECURSE
  "CMakeFiles/fedshare_exec.dir/exec/pool.cpp.o"
  "CMakeFiles/fedshare_exec.dir/exec/pool.cpp.o.d"
  "CMakeFiles/fedshare_exec.dir/exec/value_cache.cpp.o"
  "CMakeFiles/fedshare_exec.dir/exec/value_cache.cpp.o.d"
  "libfedshare_exec.a"
  "libfedshare_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
