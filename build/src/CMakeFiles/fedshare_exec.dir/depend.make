# Empty dependencies file for fedshare_exec.
# This may be replaced when dependencies are built.
