file(REMOVE_RECURSE
  "libfedshare_io.a"
)
