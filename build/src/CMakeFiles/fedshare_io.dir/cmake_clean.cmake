file(REMOVE_RECURSE
  "CMakeFiles/fedshare_io.dir/io/ascii_plot.cpp.o"
  "CMakeFiles/fedshare_io.dir/io/ascii_plot.cpp.o.d"
  "CMakeFiles/fedshare_io.dir/io/config.cpp.o"
  "CMakeFiles/fedshare_io.dir/io/config.cpp.o.d"
  "CMakeFiles/fedshare_io.dir/io/csv.cpp.o"
  "CMakeFiles/fedshare_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/fedshare_io.dir/io/table.cpp.o"
  "CMakeFiles/fedshare_io.dir/io/table.cpp.o.d"
  "libfedshare_io.a"
  "libfedshare_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
