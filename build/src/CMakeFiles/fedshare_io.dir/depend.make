# Empty dependencies file for fedshare_io.
# This may be replaced when dependencies are built.
