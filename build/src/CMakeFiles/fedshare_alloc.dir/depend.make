# Empty dependencies file for fedshare_alloc.
# This may be replaced when dependencies are built.
