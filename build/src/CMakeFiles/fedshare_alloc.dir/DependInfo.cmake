
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation.cpp" "src/CMakeFiles/fedshare_alloc.dir/alloc/allocation.cpp.o" "gcc" "src/CMakeFiles/fedshare_alloc.dir/alloc/allocation.cpp.o.d"
  "/root/repo/src/alloc/exact.cpp" "src/CMakeFiles/fedshare_alloc.dir/alloc/exact.cpp.o" "gcc" "src/CMakeFiles/fedshare_alloc.dir/alloc/exact.cpp.o.d"
  "/root/repo/src/alloc/greedy.cpp" "src/CMakeFiles/fedshare_alloc.dir/alloc/greedy.cpp.o" "gcc" "src/CMakeFiles/fedshare_alloc.dir/alloc/greedy.cpp.o.d"
  "/root/repo/src/alloc/lp_relax.cpp" "src/CMakeFiles/fedshare_alloc.dir/alloc/lp_relax.cpp.o" "gcc" "src/CMakeFiles/fedshare_alloc.dir/alloc/lp_relax.cpp.o.d"
  "/root/repo/src/alloc/p2p.cpp" "src/CMakeFiles/fedshare_alloc.dir/alloc/p2p.cpp.o" "gcc" "src/CMakeFiles/fedshare_alloc.dir/alloc/p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedshare_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
