file(REMOVE_RECURSE
  "CMakeFiles/fedshare_alloc.dir/alloc/allocation.cpp.o"
  "CMakeFiles/fedshare_alloc.dir/alloc/allocation.cpp.o.d"
  "CMakeFiles/fedshare_alloc.dir/alloc/exact.cpp.o"
  "CMakeFiles/fedshare_alloc.dir/alloc/exact.cpp.o.d"
  "CMakeFiles/fedshare_alloc.dir/alloc/greedy.cpp.o"
  "CMakeFiles/fedshare_alloc.dir/alloc/greedy.cpp.o.d"
  "CMakeFiles/fedshare_alloc.dir/alloc/lp_relax.cpp.o"
  "CMakeFiles/fedshare_alloc.dir/alloc/lp_relax.cpp.o.d"
  "CMakeFiles/fedshare_alloc.dir/alloc/p2p.cpp.o"
  "CMakeFiles/fedshare_alloc.dir/alloc/p2p.cpp.o.d"
  "libfedshare_alloc.a"
  "libfedshare_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
