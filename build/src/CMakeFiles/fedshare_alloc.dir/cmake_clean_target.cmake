file(REMOVE_RECURSE
  "libfedshare_alloc.a"
)
