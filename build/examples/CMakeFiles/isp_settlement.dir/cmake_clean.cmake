file(REMOVE_RECURSE
  "CMakeFiles/isp_settlement.dir/isp_settlement.cpp.o"
  "CMakeFiles/isp_settlement.dir/isp_settlement.cpp.o.d"
  "isp_settlement"
  "isp_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
