# Empty compiler generated dependencies file for isp_settlement.
# This may be replaced when dependencies are built.
