file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_federation.dir/hierarchical_federation.cpp.o"
  "CMakeFiles/hierarchical_federation.dir/hierarchical_federation.cpp.o.d"
  "hierarchical_federation"
  "hierarchical_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
