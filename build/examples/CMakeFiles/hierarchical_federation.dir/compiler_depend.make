# Empty compiler generated dependencies file for hierarchical_federation.
# This may be replaced when dependencies are built.
