file(REMOVE_RECURSE
  "CMakeFiles/fee_settlement.dir/fee_settlement.cpp.o"
  "CMakeFiles/fee_settlement.dir/fee_settlement.cpp.o.d"
  "fee_settlement"
  "fee_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fee_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
