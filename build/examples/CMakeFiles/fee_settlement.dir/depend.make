# Empty dependencies file for fee_settlement.
# This may be replaced when dependencies are built.
