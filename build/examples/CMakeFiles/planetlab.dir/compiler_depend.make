# Empty compiler generated dependencies file for planetlab.
# This may be replaced when dependencies are built.
