file(REMOVE_RECURSE
  "CMakeFiles/planetlab.dir/planetlab.cpp.o"
  "CMakeFiles/planetlab.dir/planetlab.cpp.o.d"
  "planetlab"
  "planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
