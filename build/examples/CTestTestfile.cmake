# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_planetlab "/root/repo/build/examples/planetlab")
set_tests_properties(example_planetlab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_design "/root/repo/build/examples/policy_design")
set_tests_properties(example_policy_design PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isp_settlement "/root/repo/build/examples/isp_settlement")
set_tests_properties(example_isp_settlement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchical_federation "/root/repo/build/examples/hierarchical_federation")
set_tests_properties(example_hierarchical_federation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fee_settlement "/root/repo/build/examples/fee_settlement")
set_tests_properties(example_fee_settlement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_replay "/root/repo/build/examples/workload_replay")
set_tests_properties(example_workload_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;add_example;/root/repo/examples/CMakeLists.txt;0;")
