file(REMOVE_RECURSE
  "CMakeFiles/fedshare_cli.dir/fedshare_cli.cpp.o"
  "CMakeFiles/fedshare_cli.dir/fedshare_cli.cpp.o.d"
  "fedshare_cli"
  "fedshare_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedshare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
