# Empty compiler generated dependencies file for fedshare_cli.
# This may be replaced when dependencies are built.
