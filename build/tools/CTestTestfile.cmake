# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_sec41 "/root/repo/build/tools/fedshare_cli" "/root/repo/configs/sec41.ini")
set_tests_properties(cli_sec41 PROPERTIES  PASS_REGULAR_EXPRESSION "shapley" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_planetlab_hierarchy "/root/repo/build/tools/fedshare_cli" "/root/repo/configs/planetlab.ini")
set_tests_properties(cli_planetlab_hierarchy PROPERTIES  PASS_REGULAR_EXPRESSION "Owen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/fedshare_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
